// Package telemetry is the unified logging infrastructure's own
// instrumentation: a dependency-free metrics registry shared by every
// subsystem of the pipeline, from the Scribe tap to the BirdBrain
// dashboard. The paper's thesis is that Twitter instrumented itself
// uniformly; this package applies the same discipline to the
// reproduction, so the batch and realtime verticals expose rates,
// latencies, and backlogs through one namespace instead of per-package
// Stats structs read after the fact.
//
// Three instrument kinds cover the pipeline:
//
//   - Counter: a monotonic atomic total (events ingested, bytes spilled);
//   - Gauge: a last-value or high-water atomic level (queue depth, peak
//     merge fan-in), or a function evaluated at snapshot time (GaugeFunc)
//     that wires an existing Stats field through without duplicating it;
//   - Histogram: a log-linear latency/size distribution with p50/p95/p99
//     summaries (histogram.go), fed directly or through stage Spans
//     (span.go).
//
// Instruments are cheap enough for hot paths: a handle is fetched once
// (registration takes a lock) and recording is a handful of atomic
// operations — no allocation, no map lookup, safe under the race
// detector. Names follow the subsystem.metric.unit convention, e.g.
// "realtime.ingest.events", "dataflow.spill.bytes",
// "realtime.wal.fsync.ns".
//
// Everything is exposed three ways: Snapshot (a JSON-serializable dump),
// the /debug/unilog HTTP handler (http.go; expvar-style text and JSON),
// and the periodic one-line summary logger (log.go).
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic total. The zero value is usable, but
// counters normally come from Registry.Counter so they appear in
// snapshots.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic level: a last-set value or, via SetMax, a
// high-water mark.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update (peak merge fan-in, spool high water).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry holds named instruments. Lookups are get-or-create and
// idempotent: two callers asking for the same name share one instrument.
// Hot paths fetch handles once (package init or construction time) and
// record through them lock-free afterwards.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry every subsystem publishes into;
// the package-level helpers below operate on it.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge evaluated at snapshot time — the
// non-duplicating way to wire an existing Stats field or a derived ratio
// into the registry. The last registration under a name wins, so a
// subsystem that restarts (a recovered realtime counter) re-publishes
// over its predecessor. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// GetCounter returns a counter from the Default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns a gauge from the Default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns a histogram from the Default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// RegisterGaugeFunc registers a snapshot-time gauge on the Default
// registry.
func RegisterGaugeFunc(name string, fn func() int64) { Default.GaugeFunc(name, fn) }

// Snap is one consistent-enough view of a registry: counters, gauges,
// and gauge funcs flattened into Series; histograms summarized with
// their quantiles. It marshals directly to the JSON shape served by
// /debug/unilog and embedded in BENCH_*.json.
type Snap struct {
	Series     map[string]int64            `json:"series"`
	Histograms map[string]HistogramSummary `json:"histograms"`

	// HistogramBuckets holds the raw occupied buckets per histogram,
	// populated only by SnapshotBuckets (or Handler with ?buckets=1) —
	// the everyday snapshot stays summary-sized.
	HistogramBuckets map[string][]BucketCount `json:"histogram_buckets,omitempty"`
}

// Snapshot captures every instrument's current value. Values are read
// instrument by instrument (not under one global lock), so a snapshot
// taken mid-traffic is approximate across instruments but exact per
// instrument.
func (r *Registry) Snapshot() Snap {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	s := Snap{
		Series:     make(map[string]int64, len(counters)+len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSummary, len(hists)),
	}
	for k, c := range counters {
		s.Series[k] = c.Value()
	}
	for k, g := range gauges {
		s.Series[k] = g.Value()
	}
	// Gauge funcs run outside the registry lock: a func may itself take
	// locks (reading a subsystem's Stats), and must not deadlock against
	// concurrent registration.
	for k, fn := range funcs {
		s.Series[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Summary()
	}
	return s
}

// Snapshot captures the Default registry.
func Snapshot() Snap { return Default.Snapshot() }

// SnapshotBuckets is Snapshot plus the raw occupied buckets of every
// histogram. Buckets are read after the summaries, bucket by bucket, so
// under concurrent recording a bucket dump can run slightly ahead of
// its own summary — consistent per bucket, approximate across them,
// same contract as the rest of the snapshot.
func (r *Registry) SnapshotBuckets() Snap {
	s := r.Snapshot()
	r.mu.RLock()
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	s.HistogramBuckets = make(map[string][]BucketCount, len(hists))
	for k, h := range hists {
		if b := h.Buckets(); b != nil {
			s.HistogramBuckets[k] = b
		}
	}
	return s
}

// SnapshotBuckets captures the Default registry with raw buckets.
func SnapshotBuckets() Snap { return Default.SnapshotBuckets() }

// Reset zeroes every counter, gauge, and histogram in place. Instruments
// stay registered and previously fetched handles stay valid — the maps
// are not cleared, the values are — which is what lets hot paths keep
// their init-time handles across a reset. Gauge funcs are left
// untouched: they read live subsystem state, and a subsystem that
// restarts re-registers over its predecessor (last wins).
//
// Reset exists for harnesses that run experiment cells back to back in
// one process (the scenario grid runner) and want each cell's snapshot
// to start from zero. It is not synchronized against concurrent
// recording: increments racing the reset may survive it, so quiesce the
// pipeline first.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Reset zeroes the Default registry's instruments.
func Reset() { Default.Reset() }

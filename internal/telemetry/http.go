package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON.
func (s Snap) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes the snapshot in expvar-style sorted "name value"
// lines; histograms expand to one line per summary field.
func (s Snap) WriteText(w io.Writer) {
	keys := make([]string, 0, len(s.Series))
	for k := range s.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, s.Series[k])
	}
	hkeys := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := s.Histograms[k]
		fmt.Fprintf(w, "%s count=%d sum=%d min=%d max=%d p50=%d p95=%d p99=%d\n",
			k, h.Count, h.Sum, h.Min, h.Max, h.P50, h.P95, h.P99)
		for _, b := range s.HistogramBuckets[k] {
			fmt.Fprintf(w, "%s.bucket %d %d %d\n", k, b.Lo, b.Hi, b.Count)
		}
	}
}

// Handler serves the registry at its mount point (conventionally
// /debug/unilog): expvar-style text by default, indented JSON when the
// request carries ?format=json or an application/json Accept header.
// ?buckets=1 adds each histogram's raw occupied buckets — as a
// histogram_buckets section in JSON, as "name.bucket lo hi count" lines
// in text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var s Snap
		if req.URL.Query().Get("buckets") == "1" {
			s = r.SnapshotBuckets()
		} else {
			s = r.Snapshot()
		}
		wantJSON := req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json")
		if wantJSON {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			if err := s.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.WriteText(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }

package realtime

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/geo"
)

// refModel is the brute-force, string-keyed reference the ID-keyed engine
// must reproduce bit-for-bit: per-path per-minute counts and the full
// §3.2 rollup table, built exactly the way the pre-symbol-table engine
// counted (string prefixes, string rollup keys).
type refModel struct {
	minute  map[string]map[int64]int64 // path -> minute -> count
	rollup  map[analytics.RollupKey]int64
	names   map[string]bool
	events  int
	minutes int
	m0      int64
}

// genReferenceWorkload streams nEvents randomized events into every
// counter (one Batcher each) while recording the reference model. mid,
// when non-nil, runs once after half the events with all batchers flushed
// and counters synced — the hook a durability test uses to cut a
// mid-stream snapshot.
func genReferenceWorkload(rng *rand.Rand, nEvents, minutes int, mid func(), cs ...*Counter) *refModel {
	clients := []string{"web", "iphone", "android"}
	pages := []string{"home", "search", "profile"}
	sections := []string{"timeline", "mentions", ""}
	elements := []string{"tweet", "avatar", ""}
	actions := []string{"impression", "click", "open"}
	countries := []string{"us", "jp", "uk", "xx"} // xx resolves to unknown

	ref := &refModel{
		minute:  map[string]map[int64]int64{},
		rollup:  map[analytics.RollupKey]int64{},
		names:   map[string]bool{},
		events:  nEvents,
		minutes: minutes,
		m0:      t0.Unix() / 60,
	}
	batchers := make([]*Batcher, len(cs))
	for i, c := range cs {
		batchers[i] = c.NewBatcher()
	}
	flushAll := func() {
		for i, b := range batchers {
			b.Flush()
			cs[i].Sync()
		}
	}
	for i := 0; i < nEvents; i++ {
		name := events.EventName{
			Client:  clients[rng.Intn(len(clients))],
			Page:    pages[rng.Intn(len(pages))],
			Section: sections[rng.Intn(len(sections))],
			Element: elements[rng.Intn(len(elements))],
			Action:  actions[rng.Intn(len(actions))],
		}
		if rng.Intn(4) > 0 {
			name.Component = "stream"
		}
		minute := ref.m0 + rng.Int63n(int64(minutes))
		country := countries[rng.Intn(len(countries))]
		user := rng.Int63n(3) // 0 = logged out
		e := ev(name.String(), time.Unix(minute*60, 0).Add(time.Duration(rng.Intn(60))*time.Second), user, country)
		for _, b := range batchers {
			b.Add(e)
		}

		full := name.String()
		ref.names[full] = true
		parts := strings.Split(full, ":")
		for d := 1; d <= events.NumComponents; d++ {
			p := strings.Join(parts[:d], ":")
			if ref.minute[p] == nil {
				ref.minute[p] = map[int64]int64{}
			}
			ref.minute[p][minute]++
		}
		for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
			ref.rollup[analytics.RollupKey{
				Level:    events.RollupLevel(lvl),
				Name:     name.Rollup(events.RollupLevel(lvl)).String(),
				Country:  geo.CountryOf(e.IP),
				LoggedIn: user != 0,
			}]++
		}
		if mid != nil && i == nEvents/2 {
			flushAll()
			mid()
		}
	}
	flushAll()
	return ref
}

func (r *refModel) sum(path string, fromMin, toMin int64) int64 {
	var total int64
	for m, n := range r.minute[path] {
		if m >= fromMin && m < toMin {
			total += n
		}
	}
	return total
}

// checkAgainstReference runs the full query battery — point sums over
// random windows, per-minute series, prefix top-K of every parent depth,
// the complete rollup table, and the observed total — and fails on any
// divergence from the reference model.
func checkAgainstReference(t *testing.T, rng *rand.Rand, c *Counter, ref *refModel) {
	t.Helper()
	m0, minutes := ref.m0, int64(ref.minutes)

	// Random paths (existing prefixes plus a few misses) over random windows.
	paths := make([]string, 0, len(ref.minute)+2)
	for p := range ref.minute {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	paths = append(paths, "ipad", "web:nosuchpage")
	for trial := 0; trial < 300; trial++ {
		path := paths[rng.Intn(len(paths))]
		a := m0 + rng.Int63n(minutes)
		z := a + 1 + rng.Int63n(minutes)
		got := c.PathSum(path, time.Unix(a*60, 0), time.Unix(z*60, 0))
		want := ref.sum(path, a, z)
		if got != want {
			t.Fatalf("PathSum(%q, m+%d, m+%d) = %d, want %d", path, a-m0, z-m0, got, want)
		}
	}

	// Per-minute series over the whole window.
	for trial := 0; trial < 20; trial++ {
		path := paths[rng.Intn(len(paths))]
		series := c.Series(path, time.Unix(m0*60, 0), time.Unix((m0+minutes)*60, 0))
		for i, got := range series {
			if want := ref.minute[path][m0+int64(i)]; got != want {
				t.Fatalf("Series(%q)[%d] = %d, want %d", path, i, got, want)
			}
		}
	}

	// Top-K of every parent depth against the reference ranking.
	from, to := time.Unix(m0*60, 0), time.Unix((m0+minutes)*60, 0)
	parents := append([]string{""}, paths[:len(paths)-2]...)
	for trial := 0; trial < 40; trial++ {
		parent := parents[rng.Intn(len(parents))]
		childDepth := 0
		if parent != "" {
			childDepth = strings.Count(parent, ":") + 1
		}
		var want []PathCount
		for p := range ref.minute {
			if strings.Count(p, ":") != childDepth {
				continue
			}
			if parent != "" && !strings.HasPrefix(p, parent+":") {
				continue
			}
			want = append(want, PathCount{Path: p, Count: ref.sum(p, m0, m0+minutes)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Count != want[j].Count {
				return want[i].Count > want[j].Count
			}
			return want[i].Path < want[j].Path
		})
		k := 1 + rng.Intn(5)
		if len(want) > k {
			want = want[:k]
		}
		got := c.TopK(parent, k, from, to)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%q, %d) = %v, want %v", parent, k, got, want)
		}
	}

	// The full rollup table matches the reference exactly.
	snap := c.RollupSnapshot(from, to)
	if !reflect.DeepEqual(snap, ref.rollup) {
		t.Fatalf("rollup snapshot diverges: %d rows vs %d reference rows", len(snap), len(ref.rollup))
	}

	if got := c.Stats().Observed; got != int64(ref.events) {
		t.Fatalf("Observed = %d, want %d", got, ref.events)
	}
}

// TestCounterMatchesReferenceModel drives a randomized workload through a
// small counter and checks every query against the brute-force
// string-keyed reference — the property pinning the ID-keyed engine to
// the pre-refactor semantics.
func TestCounterMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20120821))
	c := newCounter(t, Config{Shards: 3, Stripes: 2, Retention: 4 * time.Hour, MaxBatch: 64})
	ref := genReferenceWorkload(rng, 4000, 120, nil, c)
	c.Sync()
	checkAgainstReference(t, rng, c, ref)
	if testing.Verbose() {
		fmt.Printf("reference model: %d names, %d prefix paths, %d rollup rows\n",
			len(ref.names), len(ref.minute), len(ref.rollup))
	}
}

// TestRecoveredCounterMatchesReferenceModel runs the same property
// through the whole durability vertical: a durable counter ingests the
// randomized workload, cuts a v2 snapshot (dictionary + ID-keyed
// buckets) mid-stream, crashes with the tail only in the
// dictionary-compressed WAL, and is reopened under a *different*
// shard/stripe configuration. The recovered engine must answer the full
// query battery exactly like the reference.
func TestRecoveredCounterMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20120822))
	dir := t.TempDir()
	cfg := durCfg(3, 2)
	cfg.Retention = 4 * time.Hour
	cfg.MaxBatch = 64
	d, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := genReferenceWorkload(rng, 3000, 120, func() {
		if err := d.Snapshot(); err != nil {
			t.Fatalf("mid-stream snapshot: %v", err)
		}
	}, d)
	d.Sync()
	d.Crash()

	rcfg := durCfg(2, 4) // recovery re-digests, so resharding must not change answers
	rcfg.Retention = 4 * time.Hour
	r, err := Open(dir, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	checkAgainstReference(t, rng, r, ref)
}

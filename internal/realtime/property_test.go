package realtime

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/geo"
)

// TestCounterMatchesReferenceModel drives a randomized workload through a
// small counter and checks every query against a brute-force reference:
// point sums over random windows, per-minute series, prefix top-K, and the
// full rollup table.
func TestCounterMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(20120821))
	clients := []string{"web", "iphone", "android"}
	pages := []string{"home", "search", "profile"}
	sections := []string{"timeline", "mentions", ""}
	elements := []string{"tweet", "avatar", ""}
	actions := []string{"impression", "click", "open"}
	countries := []string{"us", "jp", "uk", "xx"} // xx resolves to unknown

	const (
		nEvents = 4000
		minutes = 120
	)
	c := newCounter(t, Config{Shards: 3, Stripes: 2, Retention: 4 * time.Hour, MaxBatch: 64})
	b := c.NewBatcher()

	refMinute := map[string]map[int64]int64{} // path -> minute -> count
	refRollup := map[analytics.RollupKey]int64{}
	seenNames := map[string]bool{}
	m0 := t0.Unix() / 60

	for i := 0; i < nEvents; i++ {
		name := events.EventName{
			Client:  clients[rng.Intn(len(clients))],
			Page:    pages[rng.Intn(len(pages))],
			Section: sections[rng.Intn(len(sections))],
			Element: elements[rng.Intn(len(elements))],
			Action:  actions[rng.Intn(len(actions))],
		}
		if rng.Intn(4) > 0 {
			name.Component = "stream"
		}
		minute := m0 + rng.Int63n(minutes)
		country := countries[rng.Intn(len(countries))]
		user := rng.Int63n(3) // 0 = logged out
		e := ev(name.String(), time.Unix(minute*60, 0).Add(time.Duration(rng.Intn(60))*time.Second), user, country)
		b.Add(e)

		full := name.String()
		seenNames[full] = true
		parts := strings.Split(full, ":")
		for d := 1; d <= events.NumComponents; d++ {
			p := strings.Join(parts[:d], ":")
			if refMinute[p] == nil {
				refMinute[p] = map[int64]int64{}
			}
			refMinute[p][minute]++
		}
		for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
			refRollup[analytics.RollupKey{
				Level:    events.RollupLevel(lvl),
				Name:     name.Rollup(events.RollupLevel(lvl)).String(),
				Country:  geo.CountryOf(e.IP),
				LoggedIn: user != 0,
			}]++
		}
	}
	b.Flush()
	c.Sync()

	refSum := func(path string, fromMin, toMin int64) int64 {
		var total int64
		for m, n := range refMinute[path] {
			if m >= fromMin && m < toMin {
				total += n
			}
		}
		return total
	}

	// Random paths (existing prefixes plus a few misses) over random windows.
	paths := make([]string, 0, len(refMinute)+2)
	for p := range refMinute {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	paths = append(paths, "ipad", "web:nosuchpage")
	for trial := 0; trial < 300; trial++ {
		path := paths[rng.Intn(len(paths))]
		a := m0 + rng.Int63n(minutes)
		z := a + 1 + rng.Int63n(minutes)
		got := c.PathSum(path, time.Unix(a*60, 0), time.Unix(z*60, 0))
		want := refSum(path, a, z)
		if got != want {
			t.Fatalf("PathSum(%q, m+%d, m+%d) = %d, want %d", path, a-m0, z-m0, got, want)
		}
	}

	// Per-minute series over the whole window.
	for trial := 0; trial < 20; trial++ {
		path := paths[rng.Intn(len(paths))]
		series := c.Series(path, time.Unix(m0*60, 0), time.Unix((m0+minutes)*60, 0))
		for i, got := range series {
			if want := refMinute[path][m0+int64(i)]; got != want {
				t.Fatalf("Series(%q)[%d] = %d, want %d", path, i, got, want)
			}
		}
	}

	// Top-K of every parent depth against the reference ranking.
	from, to := time.Unix(m0*60, 0), time.Unix((m0+minutes)*60, 0)
	parents := append([]string{""}, paths[:len(paths)-2]...)
	for trial := 0; trial < 40; trial++ {
		parent := parents[rng.Intn(len(parents))]
		childDepth := 0
		if parent != "" {
			childDepth = strings.Count(parent, ":") + 1
		}
		var want []PathCount
		for p := range refMinute {
			if strings.Count(p, ":") != childDepth {
				continue
			}
			if parent != "" && !strings.HasPrefix(p, parent+":") {
				continue
			}
			want = append(want, PathCount{Path: p, Count: refSum(p, m0, m0+minutes)})
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Count != want[j].Count {
				return want[i].Count > want[j].Count
			}
			return want[i].Path < want[j].Path
		})
		k := 1 + rng.Intn(5)
		if len(want) > k {
			want = want[:k]
		}
		got := c.TopK(parent, k, from, to)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TopK(%q, %d) = %v, want %v", parent, k, got, want)
		}
	}

	// The full rollup table matches the reference exactly.
	snap := c.RollupSnapshot(from, to)
	if !reflect.DeepEqual(snap, refRollup) {
		t.Fatalf("rollup snapshot diverges: %d rows vs %d reference rows", len(snap), len(refRollup))
	}

	if got := c.Stats().Observed; got != nEvents {
		t.Fatalf("Observed = %d, want %d", got, nEvents)
	}
	if testing.Verbose() {
		fmt.Printf("reference model: %d names, %d prefix paths, %d rollup rows\n",
			len(seenNames), len(refMinute), len(refRollup))
	}
}

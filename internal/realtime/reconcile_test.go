package realtime

import (
	"strings"
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// TestReconcileSealedDay replays a sealed warehouse day through the
// streaming counters and requires exact agreement with the batch rollup
// job — same keys, same counts.
func TestReconcileSealedDay(t *testing.T) {
	cfg := workload.DefaultConfig(day)
	cfg.Users = 80
	cfg.LoggedOutSessions = 60
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 2000
	for i := range evs {
		if err := w.Append(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := Reconcile(fs, day, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("paths diverged: %s\nmissing: %v\nextra: %v\nmismatched: %v",
			rep, rep.Missing, rep.Extra, rep.Mismatched)
	}
	if rep.Events != truth.Events {
		t.Errorf("replayed %d events, truth %d", rep.Events, truth.Events)
	}
	if rep.BatchRows == 0 || rep.BatchRows != rep.StreamRows {
		t.Errorf("row counts: batch %d, stream %d", rep.BatchRows, rep.StreamRows)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Errorf("String() = %q", rep.String())
	}
}

// TestReconcileDiff exercises the divergence classification on crafted
// tables: a row the stream missed, a row it invented, and a count drift.
func TestReconcileDiff(t *testing.T) {
	k := func(name string) analytics.RollupKey {
		return analytics.RollupKey{Level: 0, Name: name, Country: "us", LoggedIn: true}
	}
	batch := map[analytics.RollupKey]int64{
		k("web:home:a:b:c:click"): 10,
		k("web:home:a:b:c:open"):  5,
		k("web:home:a:b:c:view"):  7,
	}
	stream := map[analytics.RollupKey]int64{
		k("web:home:a:b:c:click"): 10, // agrees
		k("web:home:a:b:c:open"):  4,  // drifted
		k("web:home:a:b:c:spur"):  1,  // invented
	}
	r := &Report{Day: day}
	r.diff(batch, stream)
	if r.OK() {
		t.Fatal("diff reported OK on diverged tables")
	}
	if r.MissingN != 1 || r.ExtraN != 1 || r.MismatchN != 1 {
		t.Fatalf("diff counts = %d/%d/%d, want 1/1/1", r.MissingN, r.ExtraN, r.MismatchN)
	}
	if r.Missing[0].Key.Name != "web:home:a:b:c:view" || r.Missing[0].Batch != 7 {
		t.Errorf("Missing[0] = %+v", r.Missing[0])
	}
	if r.Extra[0].Key.Name != "web:home:a:b:c:spur" || r.Extra[0].Stream != 1 {
		t.Errorf("Extra[0] = %+v", r.Extra[0])
	}
	if r.Mismatched[0].Batch != 5 || r.Mismatched[0].Stream != 4 {
		t.Errorf("Mismatched[0] = %+v", r.Mismatched[0])
	}
	if !strings.Contains(r.String(), "DIVERGED") {
		t.Errorf("String() = %q", r.String())
	}
}

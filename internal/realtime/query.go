package realtime

import (
	"sort"
	"strings"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
)

// Queries merge counts across every shard, stripe, and minute bucket whose
// minute falls in [from, to). They read committed state only — call Sync
// first for read-your-writes against a live ingest stream.

// minuteRange converts a [from, to) time window to a half-open Unix-minute
// interval, widening to to's enclosing minute when to is mid-minute.
func minuteRange(from, to time.Time) (int64, int64) {
	fm := from.Unix() / 60
	tm := to.Unix() / 60
	if to.Unix()%60 != 0 {
		tm++
	}
	return fm, tm
}

// forEachBucket invokes fn under the stripe lock for every bucket in the
// window. The ring holds one bucket per minute, so this visits at most
// ring-length buckets regardless of the window width.
func (c *Counter) forEachBucket(from, to time.Time, fn func(*bucket)) {
	fm, tm := minuteRange(from, to)
	for _, s := range c.shards {
		for i := range s.stripes {
			st := &s.stripes[i]
			st.mu.Lock()
			for j := range st.ring {
				b := &st.ring[j]
				if b.minute >= fm && b.minute < tm && b.prefix != nil {
					fn(b)
				}
			}
			st.mu.Unlock()
		}
	}
}

// PathSum is the point lookup: the total count of a hierarchy path —
// any prefix of an event name, or a full name — over [from, to).
func (c *Counter) PathSum(path string, from, to time.Time) int64 {
	var total int64
	c.forEachBucket(from, to, func(b *bucket) {
		total += b.prefix[path]
	})
	return total
}

// Series returns per-minute counts of a path over [from, to), index 0
// holding from's minute. The window is capped at the retention length.
func (c *Counter) Series(path string, from, to time.Time) []int64 {
	fm, tm := minuteRange(from, to)
	if tm-fm > int64(c.buckets) {
		tm = fm + int64(c.buckets)
		to = time.Unix(tm*60, 0)
	}
	if tm <= fm {
		return nil
	}
	out := make([]int64, tm-fm)
	c.forEachBucket(from, to, func(b *bucket) {
		out[b.minute-fm] += b.prefix[path]
	})
	return out
}

// PathCount pairs a hierarchy path with its count.
type PathCount struct {
	Path  string
	Count int64
}

// TopK ranks the children of a hierarchy path by count over [from, to):
// TopK("", k, ...) ranks clients, TopK("web", k, ...) ranks web pages,
// and so on down the namespace. Ties break by path, ascending.
func (c *Counter) TopK(parent string, k int, from, to time.Time) []PathCount {
	if k <= 0 {
		return nil
	}
	childDepth := 0 // number of ':' in a child key
	prefix := ""
	if parent != "" {
		childDepth = strings.Count(parent, ":") + 1
		prefix = parent + ":"
	}
	acc := make(map[string]int64)
	c.forEachBucket(from, to, func(b *bucket) {
		for key, n := range b.prefix {
			if strings.Count(key, ":") != childDepth {
				continue
			}
			if prefix != "" && !strings.HasPrefix(key, prefix) {
				continue
			}
			acc[key] += n
		}
	})
	if len(acc) == 0 {
		return nil
	}
	ranked := make([]PathCount, 0, len(acc))
	for p, n := range acc {
		ranked = append(ranked, PathCount{Path: p, Count: n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Path < ranked[j].Path
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// RollupSnapshot merges the §3.2 rollup rows accumulated over [from, to)
// into one table, keyed identically to analytics.Rollups.
func (c *Counter) RollupSnapshot(from, to time.Time) map[analytics.RollupKey]int64 {
	out := make(map[analytics.RollupKey]int64)
	c.forEachBucket(from, to, func(b *bucket) {
		for k, n := range b.rollup {
			out[k] += n
		}
	})
	return out
}

// RollupTotal sums one rolled-up name across countries and login status
// over [from, to) — the live equivalent of analytics.RollupTotal.
func (c *Counter) RollupTotal(level events.RollupLevel, name string, from, to time.Time) int64 {
	var total int64
	c.forEachBucket(from, to, func(b *bucket) {
		for k, n := range b.rollup {
			if k.Level == level && k.Name == name {
				total += n
			}
		}
	})
	return total
}

package realtime

import (
	"sort"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
)

// Queries merge counts across every shard, stripe, and minute bucket whose
// minute falls in [from, to). They read committed state only — call Sync
// first for read-your-writes against a live ingest stream.
//
// The buckets are keyed by symbol-table IDs, so queries resolve strings at
// the edges: the requested path resolves to an ID before the scan (a miss
// means the path was never counted and the answer is zero), and result
// IDs resolve back to strings only once, after the per-bucket merge.

// minuteRange converts a [from, to) time window to a half-open Unix-minute
// interval, widening to to's enclosing minute when to is mid-minute.
func minuteRange(from, to time.Time) (int64, int64) {
	fm := from.Unix() / 60
	tm := to.Unix() / 60
	if to.Unix()%60 != 0 {
		tm++
	}
	return fm, tm
}

// forEachBucket invokes fn under the stripe lock for every bucket in the
// window. The ring holds one bucket per minute, so this visits at most
// ring-length buckets regardless of the window width.
func (c *Counter) forEachBucket(from, to time.Time, fn func(*bucket)) {
	fm, tm := minuteRange(from, to)
	for _, s := range c.shards {
		for i := range s.stripes {
			st := &s.stripes[i]
			st.mu.Lock()
			for j := range st.ring {
				b := &st.ring[j]
				if b.minute >= fm && b.minute < tm && b.prefix != nil {
					fn(b)
				}
			}
			st.mu.Unlock()
		}
	}
}

// PathSum is the point lookup: the total count of a hierarchy path —
// any prefix of an event name, or a full name — over [from, to).
func (c *Counter) PathSum(path string, from, to time.Time) int64 {
	defer tmQueryPathSumNs.ObserveSince(time.Now())
	id, ok := c.tab.pathOf(path)
	if !ok {
		return 0
	}
	var total int64
	c.forEachBucket(from, to, func(b *bucket) {
		total += b.prefix[id]
	})
	return total
}

// Series returns per-minute counts of a path over [from, to), index 0
// holding from's minute. The window is capped at the retention length.
func (c *Counter) Series(path string, from, to time.Time) []int64 {
	defer tmQuerySeriesNs.ObserveSince(time.Now())
	fm, tm := minuteRange(from, to)
	if tm-fm > int64(c.buckets) {
		tm = fm + int64(c.buckets)
		to = time.Unix(tm*60, 0)
	}
	if tm <= fm {
		return nil
	}
	out := make([]int64, tm-fm)
	id, ok := c.tab.pathOf(path)
	if !ok {
		return out
	}
	c.forEachBucket(from, to, func(b *bucket) {
		out[b.minute-fm] += b.prefix[id]
	})
	return out
}

// PathCount pairs a hierarchy path with its count.
type PathCount struct {
	Path  string
	Count int64
}

// TopK ranks the children of a hierarchy path by count over [from, to):
// TopK("", k, ...) ranks clients, TopK("web", k, ...) ranks web pages,
// and so on down the namespace. Ties break by path, ascending.
func (c *Counter) TopK(parent string, k int, from, to time.Time) []PathCount {
	defer tmQueryTopKNs.ObserveSince(time.Now())
	if k <= 0 {
		return nil
	}
	parentID := noParent
	childDepth := uint8(0)
	if parent != "" {
		id, ok := c.tab.pathOf(parent)
		if !ok {
			return nil
		}
		parentID = id
		d, _ := c.tab.pathMeta(id)
		childDepth = d + 1
	}
	acc := make(map[uint32]int64)
	c.forEachBucket(from, to, func(b *bucket) {
		c.tab.accumulateChildren(acc, b.prefix, parentID, childDepth)
	})
	ranked := c.tab.resolveCounts(acc)
	if len(ranked) == 0 {
		return nil
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Path < ranked[j].Path
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	return ranked
}

// RollupSnapshot merges the §3.2 rollup rows accumulated over [from, to)
// into one table, keyed identically to analytics.Rollups. The merge runs
// in ID space; each distinct cell resolves to its string key exactly once.
func (c *Counter) RollupSnapshot(from, to time.Time) map[analytics.RollupKey]int64 {
	defer tmQueryRollupNs.ObserveSince(time.Now())
	acc := make(map[rollupCell]int64)
	c.forEachBucket(from, to, func(b *bucket) {
		for cell, n := range b.rollup {
			acc[cell] += n
		}
	})
	out := make(map[analytics.RollupKey]int64, len(acc))
	for cell, n := range acc {
		out[analytics.RollupKey{
			Level:    events.RollupLevel(cell.level),
			Name:     c.tab.pathString(cell.name),
			Country:  c.tab.countryName(cell.country),
			LoggedIn: cell.loggedIn,
		}] += n
	}
	return out
}

// RollupTotal sums one rolled-up name across countries and login status
// over [from, to) — the live equivalent of analytics.RollupTotal.
func (c *Counter) RollupTotal(level events.RollupLevel, name string, from, to time.Time) int64 {
	defer tmQueryRollupNs.ObserveSince(time.Now())
	id, ok := c.tab.pathOf(name)
	if !ok {
		return 0
	}
	var total int64
	c.forEachBucket(from, to, func(b *bucket) {
		for cell, n := range b.rollup {
			if cell.level == uint8(level) && cell.name == id {
				total += n
			}
		}
	})
	return total
}

// Package realtime is the streaming counterpart of the batch pipeline: a
// Rainbird-style sharded, windowed counting service that tails the Scribe
// ingestion path and answers BirdBrain-style counting queries seconds after
// events occur, instead of the day-later latency of the log mover plus
// daily jobs (§2, §6 "real-time processing").
//
// The design exploits the property §3 built into the event namespace: the
// six-level client:page:section:component:element:action hierarchy means
// every count of interest is a sum along a path prefix. Each incoming event
// therefore increments all six prefixes of its name — "web",
// "web:home", ..., the full name — so point lookups, drill-downs, and
// prefix top-K all become map reads, no scan required.
//
// Architecture:
//
//   - a concurrent, read-mostly symbol table (symtab.go) interns every
//     distinct event name once, caching the full string digest — prefix
//     IDs, rollup-name IDs, shard, stripe — behind dense integer IDs, so
//     the per-event hot path is a read-locked lookup and the counters
//     below increment integer-keyed cells;
//   - a Tap on scribe.Aggregator.Append fans accepted client_events into N
//     counter shards (hash of the event name) over bounded channels;
//     producers block when a shard queue is full (backpressure), and each
//     shard drains whole batches at a time;
//   - a shard's key space is lock-striped: each stripe owns a ring of
//     one-minute buckets (configurable retention), so the single drain
//     goroutine and any number of concurrent readers contend only
//     per-stripe, and shards scale with cores;
//   - alongside the prefix counters every bucket keeps the five §3.2
//     rollup rows (analytics.RollupKey: level, rolled name, country,
//     logged-in), which makes the streaming path directly comparable with
//     the warehouse batch job — Reconcile replays a sealed day and asserts
//     exact agreement with analytics.Rollups.
//
// Totals are distributive: a key's count is the sum of its per-shard,
// per-stripe, per-bucket cells, so ingestion never coordinates across
// shards and queries merge at read time.
package realtime

import (
	"sync"
	"sync/atomic"
	"time"

	"unilog/internal/events"
	"unilog/internal/geo"
)

// Config sizes the counter. Zero values take the defaults below.
type Config struct {
	// Shards is the number of counter shards, each with its own drain
	// goroutine and queue. Default 4.
	Shards int
	// Stripes is the number of lock stripes per shard. Default 8.
	Stripes int
	// Retention is how much history the ring of one-minute buckets keeps.
	// Observations older than the newest minute seen by the whole counter
	// minus Retention are dropped and counted in Stats.DroppedOld, so a
	// window older than the horizon reads uniformly empty rather than
	// partially evicted. Default 26h (a full day plus slack, so a day
	// replay always fits).
	Retention time.Duration
	// QueueDepth is the per-shard channel capacity in batches. Default 128.
	QueueDepth int
	// MaxBatch caps observations per enqueued batch. Default 512.
	MaxBatch int

	// ApplyDelay, when positive, makes each drain goroutine sleep this
	// long before applying every batch — a fault-injection hook that
	// turns the counter into a deliberately slow consumer. With a small
	// QueueDepth the shard queues fill, producers block in send, and the
	// backpressure becomes visible in Stats.QueueFull and the
	// "realtime.queue.depth" / "realtime.queue.full_waits" telemetry
	// gauges. The scenario harness (internal/scenario) drives it from
	// slow-consumer workload specs; production configs leave it zero.
	ApplyDelay time.Duration

	// WALDir, when non-empty, makes the counter durable: every drained
	// batch is appended to a per-shard write-ahead log under this
	// directory before it is applied, and a snapshotter periodically
	// serializes the stripe rings and truncates the logs. Open sets it
	// from its dir argument; New ignores it (memory-only counters come
	// from New, durable ones from Open, which is what knows how to
	// recover existing state first).
	WALDir string
	// SnapshotEvery is the interval between automatic snapshots of a
	// durable counter. Each snapshot bounds both recovery time and disk
	// use (the WAL tail it retires is deleted). Default 30s.
	SnapshotEvery time.Duration
	// FsyncEvery is the number of appended WAL batches between fsyncs on
	// each shard's log, the durability/throughput trade-off knob: 1
	// fsyncs every batch (strongest, slowest), larger values amortize
	// the sync over more batches and risk losing at most that many
	// batches on an OS (not process) crash — every batch reaches the
	// page cache before it is applied, so a killed process loses
	// nothing that was drained. Default 64.
	FsyncEvery int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Stripes <= 0 {
		c.Stripes = 8
	}
	if c.Retention <= 0 {
		c.Retention = 26 * time.Hour
	}
	if c.Retention < 2*time.Minute {
		c.Retention = 2 * time.Minute
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 30 * time.Second
	}
	if c.FsyncEvery <= 0 {
		c.FsyncEvery = 64
	}
	return c
}

// Stats counts counter activity. All fields are monotonic.
type Stats struct {
	// Observed is the number of events applied to the counters.
	Observed int64
	// TapEntries is the number of Scribe entries seen by TapBatch.
	TapEntries int64
	// DecodeErrors counts tap entries that failed Thrift decoding.
	DecodeErrors int64
	// Invalid counts events whose name failed validation.
	Invalid int64
	// DroppedOld counts observations older than the retention window.
	DroppedOld int64
	// Evicted counts minute buckets recycled by the ring.
	Evicted int64
	// QueueFull counts enqueues that found a shard queue full and had to
	// block — the backpressure signal.
	QueueFull int64
	// WALBatches and WALBytes count batches and framed bytes appended to
	// the write-ahead logs (zero on memory-only counters).
	WALBatches int64
	WALBytes   int64
	// WALErrors counts WAL appends or fsyncs that failed; the counter
	// keeps serving from memory but the failed tail is not durable.
	WALErrors int64
	// Fsyncs counts explicit WAL fsyncs (see Config.FsyncEvery).
	Fsyncs int64
	// Snapshots counts snapshots written; SnapshotErrors counts attempts
	// that failed and left the previous snapshot and WAL tail in place.
	Snapshots      int64
	SnapshotErrors int64
}

// obs is one decoded, pre-digested observation: everything a shard needs
// to apply the event without touching the Thrift message again. The
// symbol table did the string work the first time this name appeared, so
// an obs is ~24 bytes — a minute, an immutable *nameSym (which carries
// the prefix/rollup/stripe digest), and an interned country — where the
// pre-interning representation hauled eleven strings (~200 B) through
// the shard channel per event.
type obs struct {
	minute   int64 // event timestamp in Unix minutes
	sym      *nameSym
	country  uint32 // interned country ID
	loggedIn bool
}

// rollupCell is the ID-keyed form of analytics.RollupKey: the counter key
// for one §3.2 rollup row inside a bucket. String resolution happens at
// query time (RollupSnapshot), not per increment.
type rollupCell struct {
	name     uint32 // path ID of the rolled name
	country  uint32 // country ID
	level    uint8  // events.RollupLevel
	loggedIn bool
}

// bucket is one minute of counters within one stripe. Both maps are keyed
// by symbol-table IDs, so applying an event is eleven integer-keyed
// increments instead of eleven string hashes.
type bucket struct {
	minute int64            // Unix minute this slot currently holds; 0 = empty
	prefix map[uint32]int64 // path ID -> count
	rollup map[rollupCell]int64
}

// stripe is one lock-striped slice of a shard's key space: a ring of
// minute buckets guarded by a single mutex.
type stripe struct {
	mu   sync.Mutex
	ring []bucket
}

type shardMsg struct {
	batch []obs
	// sync, when non-nil, is closed once every message enqueued before it
	// has been applied.
	sync chan struct{}
	// snap, when non-nil, asks the drain goroutine to rotate its WAL to a
	// fresh segment and reply with its serialized stripe state — the
	// per-shard half of a consistent snapshot (see snapshot.go).
	snap chan shardState
}

// shard owns one queue, one drain goroutine, and Stripes stripes.
type shard struct {
	idx     int
	ch      chan shardMsg
	stripes []stripe
	scratch [][]obs    // per-stripe grouping buffer, drain-goroutine-local
	wal     *walWriter // nil on memory-only counters; drain-goroutine-owned after start
	// applied counts events this shard has applied since start; dropped
	// and evicted mirror the replay-derivable slices of DroppedOld and
	// Evicted. All three are written only by the owning drain goroutine
	// (or single-threaded recovery), and snapshots read them from that
	// same goroutine, which is what lets a mid-run snapshot record
	// totals exactly consistent with the captured stripe state — WAL-tail
	// replay then re-derives precisely the post-rotation remainder.
	applied int64
	dropped int64
	evicted int64
}

// Counter is the realtime counting service. Create with New, feed it via
// TapBatch (wired to scribe.Aggregator.Tap), a Batcher, or Ingest, and
// read it with the query methods in query.go.
type Counter struct {
	cfg     Config
	shards  []*shard
	buckets int // ring length, minutes
	tab     *symtab

	// batchPool recycles obs slices between the drain goroutines (which
	// finish with a batch after applying it) and Batchers (which need an
	// empty buffer after handing one off), making steady-state ingestion
	// allocation-free.
	batchPool sync.Pool

	closeMu sync.RWMutex
	closed  bool
	wg      sync.WaitGroup

	// Durability state (zero on memory-only counters). snapMu serializes
	// snapshot attempts; snapSeq numbers snapshot files; snapQuit stops
	// the periodic snapshotter.
	durable  bool
	snapMu   sync.Mutex
	snapSeq  int64
	snapQuit chan struct{}
	snapDone chan struct{}
	// observedBase is the observed total carried over from the recovered
	// snapshot; the live observed counter starts from it. droppedBase
	// and evictedBase carry the matching slices of DroppedOld/Evicted,
	// so snapshots can record those counters exactly at the WAL rotation
	// boundary instead of sampling the live atomics mid-drain (which
	// would double count post-rotation drops on replay). All three are
	// written only before start() and read-only afterwards.
	observedBase int64
	droppedBase  int64
	evictedBase  int64

	// maxMinute is the newest Unix minute any shard has applied — the
	// high-water mark the retention horizon hangs from.
	maxMinute atomic.Int64

	observed     atomic.Int64
	tapEntries   atomic.Int64
	decodeErrors atomic.Int64
	invalid      atomic.Int64
	droppedOld   atomic.Int64
	evicted      atomic.Int64
	queueFull    atomic.Int64
	walBatches   atomic.Int64
	walBytes     atomic.Int64
	walErrors    atomic.Int64
	fsyncs       atomic.Int64
	snapshots    atomic.Int64
	snapErrors   atomic.Int64
}

// New starts a memory-only counter with cfg's shards and drain goroutines
// running. The durability fields of cfg are ignored; durable counters come
// from Open, which recovers any existing state before starting.
func New(cfg Config) *Counter {
	c := allocCounter(cfg.withDefaults())
	c.start()
	return c
}

// newCounter allocates shards and stripes without starting goroutines, so
// Open can load recovered state single-threaded first.
func allocCounter(cfg Config) *Counter {
	c := &Counter{
		cfg:     cfg,
		buckets: int(cfg.Retention / time.Minute),
		tab:     newSymtab(cfg.Shards, cfg.Stripes),
	}
	c.batchPool.New = func() any {
		b := make([]obs, 0, cfg.MaxBatch)
		return &b
	}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			idx:     i,
			ch:      make(chan shardMsg, cfg.QueueDepth),
			stripes: make([]stripe, cfg.Stripes),
			scratch: make([][]obs, cfg.Stripes),
		}
		for j := range s.stripes {
			s.stripes[j].ring = make([]bucket, c.buckets)
		}
		c.shards = append(c.shards, s)
	}
	return c
}

// start launches the drain goroutines (and, on durable counters, the
// periodic snapshotter).
func (c *Counter) start() {
	for _, s := range c.shards {
		c.wg.Add(1)
		go c.drain(s)
	}
	if c.durable {
		c.snapQuit = make(chan struct{})
		c.snapDone = make(chan struct{})
		go c.snapshotLoop()
	}
}

// Close stops the drain goroutines after the queues empty, then writes a
// final snapshot on durable counters (so the next Open loads one file and
// replays nothing). The counters remain readable; further ingestion is a
// no-op.
func (c *Counter) Close() { c.shutdown(true) }

// Crash stops the counter the way a kill would: the drain goroutines exit
// and the WAL files close with whatever the fsync cadence made durable,
// but no final snapshot is written and nothing is truncated — the next
// Open must recover from the last snapshot plus the WAL tail. It exists
// for crash-recovery tests and fault-injection demos.
func (c *Counter) Crash() { c.shutdown(false) }

func (c *Counter) shutdown(final bool) {
	c.closeMu.Lock()
	if c.closed {
		c.closeMu.Unlock()
		return
	}
	c.closed = true
	for _, s := range c.shards {
		close(s.ch)
	}
	c.closeMu.Unlock()
	c.wg.Wait()
	if !c.durable {
		return
	}
	close(c.snapQuit)
	<-c.snapDone
	if final {
		// Queues are drained, goroutines stopped: serialize the stripes
		// directly and retire the whole WAL.
		c.snapMu.Lock()
		if err := c.snapshotFinal(); err != nil {
			c.snapErrors.Add(1)
		}
		c.snapMu.Unlock()
	}
}

// Sync blocks until every observation enqueued before the call has been
// applied — the read-your-writes barrier queries and tests need.
func (c *Counter) Sync() {
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		c.wg.Wait()
		return
	}
	dones := make([]chan struct{}, len(c.shards))
	for i, s := range c.shards {
		dones[i] = make(chan struct{})
		s.ch <- shardMsg{sync: dones[i]}
	}
	c.closeMu.RUnlock()
	for _, d := range dones {
		<-d
	}
}

// Stats returns a snapshot of the counter's activity counters.
func (c *Counter) Stats() Stats {
	return Stats{
		Observed:       c.observed.Load(),
		TapEntries:     c.tapEntries.Load(),
		DecodeErrors:   c.decodeErrors.Load(),
		Invalid:        c.invalid.Load(),
		DroppedOld:     c.droppedOld.Load(),
		Evicted:        c.evicted.Load(),
		QueueFull:      c.queueFull.Load(),
		WALBatches:     c.walBatches.Load(),
		WALBytes:       c.walBytes.Load(),
		WALErrors:      c.walErrors.Load(),
		Fsyncs:         c.fsyncs.Load(),
		Snapshots:      c.snapshots.Load(),
		SnapshotErrors: c.snapErrors.Load(),
	}
}

// Shards reports the configured shard count.
func (c *Counter) Shards() int { return len(c.shards) }

// hash32 is FNV-1a; it picks both the shard (low bits) and the stripe
// (higher bits) for an event name.
func hash32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// observe digests one event into an obs and its shard index. It reports
// false for events that should not be counted (invalid name). A name seen
// before costs one read-locked lookup; validation and the string digest
// ran when the symbol table first interned it.
func (c *Counter) observe(e *events.ClientEvent) (obs, int, bool) {
	sym, country, err := c.tab.resolve(e.Name, geo.CountryOf(e.IP))
	if err != nil {
		c.invalid.Add(1)
		return obs{}, 0, false
	}
	return obs{minute: e.Timestamp / 60_000, sym: sym, country: country, loggedIn: e.LoggedIn()},
		int(sym.shard), true
}

// digestFull is observe for WAL replay (recover.go), where the event
// arrives as a logged name string. Re-digesting through this counter's own
// symbol table is what lets a log written under one shard/stripe
// configuration replay correctly into another.
func (c *Counter) digestFull(name string, minute int64, country string, loggedIn bool) (obs, int, error) {
	sym, cid, err := c.tab.resolveFull(name, country)
	if err != nil {
		return obs{}, 0, err
	}
	return obs{minute: minute, sym: sym, country: cid, loggedIn: loggedIn}, int(sym.shard), nil
}

// send enqueues one batch on a shard, blocking when the queue is full.
func (c *Counter) send(shardIdx int, batch []obs) {
	if len(batch) == 0 {
		return
	}
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed {
		return
	}
	s := c.shards[shardIdx]
	if len(s.ch) == cap(s.ch) {
		c.queueFull.Add(1)
	}
	s.ch <- shardMsg{batch: batch}
}

// drain is the per-shard goroutine: it pulls batches off the queue,
// appends each to the shard's WAL (durable counters), groups it by
// stripe, and applies each group under one lock acquisition. The
// write-ahead ordering — log before apply — is what makes recovery exact:
// a batch is never visible to queries unless it is also in the OS's hands.
func (c *Counter) drain(s *shard) {
	defer c.wg.Done()
	for msg := range s.ch {
		if msg.batch != nil {
			if c.cfg.ApplyDelay > 0 {
				time.Sleep(c.cfg.ApplyDelay)
			}
			if s.wal != nil {
				c.walAppend(s, msg.batch)
			}
			c.apply(s, msg.batch)
			// The batch was handed off exclusively; recycle full-size
			// buffers so the next Batcher send is allocation-free.
			if cap(msg.batch) >= c.cfg.MaxBatch {
				buf := msg.batch[:0]
				c.batchPool.Put(&buf)
			}
		}
		if msg.snap != nil {
			msg.snap <- c.captureShard(s)
		}
		if msg.sync != nil {
			close(msg.sync)
		}
	}
	if s.wal != nil {
		if err := s.wal.close(); err != nil {
			c.walErrors.Add(1)
		}
	}
}

func (c *Counter) apply(s *shard, batch []obs) {
	t0 := time.Now()
	for i := range batch {
		st := batch[i].sym.stripe
		s.scratch[st] = append(s.scratch[st], batch[i])
	}
	var applied int64
	for st := range s.scratch {
		group := s.scratch[st]
		if len(group) == 0 {
			continue
		}
		stripe := &s.stripes[st]
		stripe.mu.Lock()
		for i := range group {
			if c.applyOne(s, stripe, &group[i]) {
				applied++
			}
		}
		stripe.mu.Unlock()
		s.scratch[st] = group[:0]
	}
	c.observed.Add(applied)
	tmIngestEvents.Add(applied)
	tmIngestBatches.Inc()
	tmApplyBatchNs.ObserveSince(t0)
}

// applyOne increments one observation's 6 prefix counters and 5 rollup
// rows in its minute bucket, reporting whether the event was applied (vs
// dropped behind the retention horizon). Callers hold the stripe lock and
// account the observed total (apply batches one atomic add per group;
// recovery adds per record).
func (c *Counter) applyOne(s *shard, st *stripe, o *obs) bool {
	for {
		cur := c.maxMinute.Load()
		if o.minute <= cur || c.maxMinute.CompareAndSwap(cur, o.minute) {
			break
		}
	}
	if o.minute <= c.maxMinute.Load()-int64(c.buckets) {
		// Older than the retention horizon: drop rather than serve a
		// partially-evicted minute.
		s.dropped++
		c.droppedOld.Add(1)
		return false
	}
	b := &st.ring[int(o.minute)%c.buckets]
	if b.minute != o.minute {
		if b.minute > o.minute {
			// The slot already holds a newer minute (the horizon advanced
			// between the checks above): treat as past retention.
			s.dropped++
			c.droppedOld.Add(1)
			return false
		}
		if b.prefix != nil {
			s.evicted++
			c.evicted.Add(1)
		}
		b.minute = o.minute
		b.prefix = make(map[uint32]int64, 2*events.NumComponents)
		b.rollup = make(map[rollupCell]int64, events.NumRollupLevels)
	}
	sym := o.sym
	for _, id := range sym.prefixID {
		b.prefix[id]++
	}
	for lvl, id := range sym.rollupID {
		b.rollup[rollupCell{name: id, country: o.country, level: uint8(lvl), loggedIn: o.loggedIn}]++
	}
	s.applied++
	return true
}

package realtime

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/recordio"
)

// A snapshot is the other half of durability: the WAL alone would grow
// without bound and make recovery replay a whole day, so the snapshotter
// periodically serializes every shard's stripe rings into one CRC-framed
// file and retires the WAL segments the file covers.
//
// The snapshot/WAL boundary must be exact — counters are additive, so a
// record replayed on top of a snapshot that already contains it double
// counts. The protocol gets exactness per shard from the drain goroutine
// itself: a snap message asks each drain to (1) rotate its WAL to a fresh
// segment and (2) serialize its stripes, in that order, between batches.
// The serialized state is then precisely the effect of every record in
// segments below the rotated sequence number, and recovery replays only
// segments at or above it. Shards are captured independently (shard A may
// apply more batches while shard B serializes) — that is fine, because
// shards never share keys and recovery is per-shard.
//
// Snapshot files are named snap-<seq>.snap; higher seq wins. A v2 file is
// a CRC record stream: one header record (version, per-shard next WAL
// sequence numbers, the observed-event total, the retention high-water
// minute, and the full Stats block so activity counters survive
// restarts), one dictionary record (the symbol table's path and country
// strings, indexed by ID), then one record per non-empty minute bucket
// with ID-keyed cells. v1 files (string-keyed buckets, no dictionary, no
// stats) still load. Writes go to a temp file that is fsynced and
// atomically renamed, so a crashed snapshotter leaves either the old
// snapshot or the new one, never a half-written current file.

// errClosed reports a durability operation on a stopped counter.
var errClosed = errors.New("realtime: counter is closed")

// Snapshot format versions: v2 added the dictionary record, ID-keyed
// bucket cells, and the persisted stats block. v1 files still load.
const (
	snapRecordV1      = 1
	snapRecordVersion = 2
)

// Record tags inside a snapshot file.
const (
	snapTagHeader = 'H'
	snapTagDict   = 'D'
	snapTagBucket = 'B'
)

// snapName formats a snapshot file name.
func snapName(seq int64) string { return fmt.Sprintf("snap-%010d.snap", seq) }

// parseSnapName inverts snapName.
func parseSnapName(name string) (seq int64, ok bool) {
	rest, ok := strings.CutPrefix(name, "snap-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".snap")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseInt(rest, 10, 64)
	if err != nil || seq < 0 {
		return 0, false
	}
	return seq, true
}

// shardState is one shard's contribution to a snapshot: its encoded
// buckets, its applied-event count, and the WAL sequence number its state
// is exact up to (exclusive).
type shardState struct {
	recs    [][]byte
	applied int64
	dropped int64
	evicted int64
	nextSeq int64
	err     error
}

// captureShard runs on the shard's drain goroutine: rotate the WAL so the
// boundary is durable, then encode every live bucket. Stripe locks are
// held per stripe only against concurrent readers. Bucket records carry
// only IDs; the dictionary that resolves them is fetched afterwards, in
// writeSnapshot, which is safe because IDs are append-only — the table
// can only have grown since the capture.
func (c *Counter) captureShard(s *shard) shardState {
	st := shardState{applied: s.applied, dropped: s.dropped, evicted: s.evicted}
	if s.wal != nil {
		seq, err := s.wal.rotate()
		if err != nil {
			return shardState{err: err}
		}
		st.nextSeq = seq
	}
	for i := range s.stripes {
		sp := &s.stripes[i]
		sp.mu.Lock()
		for j := range sp.ring {
			b := &sp.ring[j]
			if b.prefix == nil {
				continue
			}
			st.recs = append(st.recs, encodeBucket(nil, s.idx, i, b))
		}
		sp.mu.Unlock()
	}
	return st
}

// Snapshot forces a snapshot now: every shard rotates its WAL and hands
// its state to the caller, which writes the file and deletes the covered
// segments. Automatic snapshots call this on the Config.SnapshotEvery
// cadence. It returns errClosed (and changes nothing) on a stopped
// counter.
func (c *Counter) Snapshot() error {
	err := c.snapshotNow()
	if err != nil && err != errClosed {
		c.snapErrors.Add(1)
	}
	return err
}

func (c *Counter) snapshotNow() error {
	if !c.durable {
		return errors.New("realtime: memory-only counter has no snapshots (use Open)")
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		return errClosed
	}
	replies := make([]chan shardState, len(c.shards))
	for i, s := range c.shards {
		replies[i] = make(chan shardState, 1)
		s.ch <- shardMsg{snap: replies[i]}
	}
	c.closeMu.RUnlock()
	states := make([]shardState, len(c.shards))
	for i := range replies {
		states[i] = <-replies[i]
	}
	for i := range states {
		if states[i].err != nil {
			return states[i].err
		}
	}
	return c.writeSnapshot(states)
}

// snapshotFinal serializes directly from the stripes after the drains
// have exited (Close); the WAL writers are closed, so the snapshot covers
// every segment and the whole log is retired.
func (c *Counter) snapshotFinal() error {
	states := make([]shardState, len(c.shards))
	for i, s := range c.shards {
		st := c.captureShardStopped(s)
		st.nextSeq = s.wal.seq + 1
		states[i] = st
	}
	return c.writeSnapshot(states)
}

// captureShardStopped is captureShard without the WAL rotation, for use
// once the drain goroutines are gone.
func (c *Counter) captureShardStopped(s *shard) shardState {
	st := shardState{applied: s.applied, dropped: s.dropped, evicted: s.evicted}
	for i := range s.stripes {
		sp := &s.stripes[i]
		for j := range sp.ring {
			b := &sp.ring[j]
			if b.prefix == nil {
				continue
			}
			st.recs = append(st.recs, encodeBucket(nil, s.idx, i, b))
		}
	}
	return st
}

// writeSnapshot persists the captured states as snap-<snapSeq+1>.snap and
// prunes everything it supersedes. Callers hold snapMu.
func (c *Counter) writeSnapshot(states []shardState) error {
	defer tmSnapshotNs.ObserveSince(time.Now())
	// The header's next-sequence list must cover not only the live shards
	// but any lingering segment files from a previous, larger
	// configuration: their content was replayed at Open and is therefore
	// in this snapshot, and recording them here keeps a crash between
	// rename and prune from double counting them on the next recovery.
	next := make([]int64, len(states))
	for i, st := range states {
		next[i] = st.nextSeq
	}
	for shard, seq := range c.lingeringSegments(len(states)) {
		for len(next) <= shard {
			next = append(next, 0)
		}
		next[shard] = seq + 1
	}
	var observed, dropped, evicted int64
	for _, st := range states {
		observed += st.applied
		dropped += st.dropped
		evicted += st.evicted
	}
	observed += c.observedBase
	// The activity counters are captured here so a restart carries them
	// forward. The replay-derivable ones — DroppedOld, Evicted — use the
	// per-shard values read on each drain goroutine at its WAL rotation,
	// exactly like the observed total: sampling the live atomics instead
	// would bake post-rotation drops into the snapshot and count them
	// again when the WAL tail replays. Snapshots counts the file being
	// cut.
	stats := c.Stats()
	stats.Snapshots++
	stats.DroppedOld = c.droppedBase + dropped
	stats.Evicted = c.evictedBase + evicted

	seq := c.snapSeq + 1
	tmp := filepath.Join(c.cfg.WALDir, fmt.Sprintf("snap-%010d.tmp", seq))
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	cw := recordio.NewCRCWriter(bw)
	werr := cw.Append(encodeSnapHeader(nil, next, observed, c.maxMinute.Load(), stats))
	if werr == nil {
		paths, countries := c.tab.dict()
		werr = cw.Append(encodeSnapDict(nil, paths, countries))
	}
	for _, st := range states {
		for _, rec := range st.recs {
			if werr != nil {
				break
			}
			werr = cw.Append(rec)
		}
	}
	if werr == nil {
		werr = bw.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	final := filepath.Join(c.cfg.WALDir, snapName(seq))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(c.cfg.WALDir)
	c.snapSeq = seq
	c.snapshots.Add(1)
	c.prune(seq, next)
	return nil
}

// lingeringSegments returns, for every shard index >= liveShards that
// still has WAL files on disk, the highest segment sequence present.
func (c *Counter) lingeringSegments(liveShards int) map[int]int64 {
	out := map[int]int64{}
	entries, err := os.ReadDir(c.cfg.WALDir)
	if err != nil {
		return out
	}
	for _, e := range entries {
		shard, seq, ok := parseWALName(e.Name())
		if !ok || shard < liveShards {
			continue
		}
		if cur, ok := out[shard]; !ok || seq > cur {
			out[shard] = seq
		}
	}
	return out
}

// prune best-effort deletes superseded snapshots and WAL segments below
// each shard's covered boundary. The immediately previous snapshot is
// kept: it is what recovery falls back to if the newest file turns out
// unreadable, and it costs one file. Failures are harmless: recovery
// ignores superseded snapshots and skips covered segments by sequence.
func (c *Counter) prune(seq int64, next []int64) {
	entries, err := os.ReadDir(c.cfg.WALDir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if s, ok := parseSnapName(name); ok && s < seq-1 {
			os.Remove(filepath.Join(c.cfg.WALDir, name))
		}
		if shard, s, ok := parseWALName(name); ok && shard < len(next) && s < next[shard] {
			os.Remove(filepath.Join(c.cfg.WALDir, name))
		}
	}
}

// snapshotLoop cuts a snapshot every Config.SnapshotEvery until shutdown.
func (c *Counter) snapshotLoop() {
	defer close(c.snapDone)
	t := time.NewTicker(c.cfg.SnapshotEvery)
	defer t.Stop()
	for {
		select {
		case <-c.snapQuit:
			return
		case <-t.C:
			_ = c.Snapshot() // failure counted in SnapshotErrors; WAL tail stays
		}
	}
}

// syncDir fsyncs a directory so a just-renamed file survives a power cut.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// encodeSnapHeader appends the header record: tag, version, the per-shard
// next WAL sequences, the observed total, the high-water minute, and the
// activity-counter block.
func encodeSnapHeader(buf []byte, next []int64, observed, maxMinute int64, stats Stats) []byte {
	buf = append(buf, snapTagHeader, snapRecordVersion)
	buf = binary.AppendUvarint(buf, uint64(len(next)))
	for _, n := range next {
		buf = binary.AppendUvarint(buf, uint64(n))
	}
	buf = binary.AppendUvarint(buf, uint64(observed))
	buf = binary.AppendUvarint(buf, uint64(maxMinute))
	for _, v := range statsFields(&stats) {
		buf = binary.AppendUvarint(buf, uint64(*v))
	}
	return buf
}

// statsFields lists the persisted activity counters in wire order.
// Observed is deliberately absent: it travels separately, computed from
// the per-shard applied counts the snapshot protocol makes exact.
func statsFields(s *Stats) []*int64 {
	return []*int64{
		&s.TapEntries, &s.DecodeErrors, &s.Invalid, &s.DroppedOld,
		&s.Evicted, &s.QueueFull, &s.WALBatches, &s.WALBytes,
		&s.WALErrors, &s.Fsyncs, &s.Snapshots, &s.SnapshotErrors,
	}
}

// snapHeader is the decoded header record.
type snapHeader struct {
	next      []int64
	observed  int64
	maxMinute int64
	version   byte
	stats     Stats // zero when loading a v1 snapshot
}

// decodeSnapHeader parses a header record, v1 or v2, on the shared
// recordio.Cursor.
func decodeSnapHeader(rec []byte) (snapHeader, error) {
	var h snapHeader
	corrupt := func(what string) (snapHeader, error) {
		return h, fmt.Errorf("%w: snapshot header %s", recordio.ErrCorrupt, what)
	}
	if len(rec) < 2 || rec[0] != snapTagHeader ||
		(rec[1] != snapRecordV1 && rec[1] != snapRecordVersion) {
		return corrupt("tag/version")
	}
	h.version = rec[1]
	c := recordio.NewCursor(rec[2:])
	nshards := c.Uvarint("shard count")
	if !c.Ok() || nshards > 1<<16 {
		return corrupt("shard count")
	}
	h.next = make([]int64, nshards)
	for i := range h.next {
		h.next[i] = int64(c.Uvarint("next seq"))
	}
	h.observed = int64(c.Uvarint("observed"))
	h.maxMinute = int64(c.Uvarint("max minute"))
	if h.version >= snapRecordVersion {
		for _, f := range statsFields(&h.stats) {
			*f = int64(c.Uvarint("stats"))
		}
	}
	if err := c.Err(); err != nil {
		return h, fmt.Errorf("snapshot header: %w", err)
	}
	return h, nil
}

// snapDict is the decoded dictionary record: the snapshot's ID -> string
// tables for counter paths and countries.
type snapDict struct {
	paths     []string
	countries []string
}

// encodeSnapDict appends the dictionary record.
func encodeSnapDict(buf []byte, paths, countries []string) []byte {
	buf = append(buf, snapTagDict)
	buf = binary.AppendUvarint(buf, uint64(len(paths)))
	for _, s := range paths {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(countries)))
	for _, s := range countries {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

// decodeSnapDict parses a dictionary record. The cursor's Count bounds the
// entry count by the remaining bytes, so a CRC-colliding file cannot
// balloon the preallocation.
func decodeSnapDict(rec []byte) (snapDict, error) {
	var d snapDict
	corrupt := func(what string) (snapDict, error) {
		return d, fmt.Errorf("%w: snapshot dictionary %s", recordio.ErrCorrupt, what)
	}
	if len(rec) < 1 || rec[0] != snapTagDict {
		return corrupt("tag")
	}
	c := recordio.NewCursor(rec[1:])
	readStrs := func(what string) []string {
		count := c.Count(what)
		out := make([]string, 0, count)
		for i := 0; i < count && c.Ok(); i++ {
			out = append(out, c.String(what))
		}
		return out
	}
	d.paths = readStrs("paths")
	d.countries = readStrs("countries")
	if err := c.Err(); err != nil {
		return d, fmt.Errorf("snapshot dictionary: %w", err)
	}
	return d, nil
}

// encodeBucket appends one v2 bucket record: tag, shard, stripe, minute,
// then the ID-keyed prefix and rollup tables. Strings live in the
// dictionary record, written once per file.
func encodeBucket(buf []byte, shard, stripe int, b *bucket) []byte {
	buf = append(buf, snapTagBucket)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, uint64(stripe))
	buf = binary.AppendUvarint(buf, uint64(b.minute))
	buf = binary.AppendUvarint(buf, uint64(len(b.prefix)))
	for id, v := range b.prefix {
		buf = binary.AppendUvarint(buf, uint64(id))
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.rollup)))
	for cell, v := range b.rollup {
		buf = append(buf, cell.level)
		buf = binary.AppendUvarint(buf, uint64(cell.name))
		buf = binary.AppendUvarint(buf, uint64(cell.country))
		if cell.loggedIn {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

// snapBucket is a decoded bucket record. v2 buckets stay in ID space —
// cells keyed by the snapshot file's dictionary IDs, translated into the
// recovering counter's own IDs by loadBucket through a remap table built
// once per file (no per-cell string hashing). v1 buckets, which predate
// the dictionary, decode to string-keyed cells and re-intern per key.
// Either way, keys end up in the recovering counter's symbol table, which
// is how a snapshot survives shard/stripe/ID-assignment differences.
type snapBucket struct {
	shard, stripe int
	minute        int64
	// v2: dictionary-ID-keyed cells (rollupCell fields hold file IDs).
	prefixID map[uint32]int64
	rollupID map[rollupCell]int64
	// v1: string-keyed cells.
	prefix map[string]int64
	rollup map[analytics.RollupKey]int64
}

// decodeBucket parses a bucket record of either version. v2 IDs are
// range-checked against the file's dictionary here — so the remap lookup
// at load time cannot go out of bounds — but not resolved to strings.
// Bounds checks ride on the shared recordio.Cursor; dictionary-range
// checks stay local.
func decodeBucket(rec []byte, version byte, dict *snapDict) (snapBucket, error) {
	var b snapBucket
	corrupt := func(what string) (snapBucket, error) {
		return b, fmt.Errorf("%w: snapshot bucket %s", recordio.ErrCorrupt, what)
	}
	if len(rec) < 1 || rec[0] != snapTagBucket {
		return corrupt("tag")
	}
	c := recordio.NewCursor(rec[1:])
	b.shard = int(c.Uvarint("coordinates"))
	b.stripe = int(c.Uvarint("coordinates"))
	b.minute = int64(c.Uvarint("coordinates"))
	badID := false
	np := c.Count("prefix count")
	if version == snapRecordV1 {
		b.prefix = make(map[string]int64, np)
		for i := 0; i < np && c.Ok(); i++ {
			k := c.String("prefix key")
			v := c.Uvarint("prefix value")
			if c.Ok() {
				b.prefix[k] += int64(v)
			}
		}
	} else {
		b.prefixID = make(map[uint32]int64, np)
		for i := 0; i < np && c.Ok() && !badID; i++ {
			id := c.Uvarint("prefix key")
			v := c.Uvarint("prefix value")
			if id >= uint64(len(dict.paths)) {
				badID = true
			} else if c.Ok() {
				b.prefixID[uint32(id)] += int64(v)
			}
		}
	}
	nr := c.Count("rollup count")
	if version == snapRecordV1 {
		b.rollup = make(map[analytics.RollupKey]int64, nr)
		for i := 0; i < nr && c.Ok(); i++ {
			level := events.RollupLevel(c.Byte("rollup level"))
			name := c.String("rollup name")
			country := c.String("rollup country")
			loggedIn := c.Bool("rollup login bit")
			v := c.Uvarint("rollup value")
			if c.Ok() {
				b.rollup[analytics.RollupKey{Level: level, Name: name, Country: country, LoggedIn: loggedIn}] += int64(v)
			}
		}
	} else {
		b.rollupID = make(map[rollupCell]int64, nr)
		for i := 0; i < nr && c.Ok() && !badID; i++ {
			level := c.Byte("rollup level")
			name := c.Uvarint("rollup name")
			country := c.Uvarint("rollup country")
			loggedIn := c.Bool("rollup login bit")
			v := c.Uvarint("rollup value")
			if name >= uint64(len(dict.paths)) || country >= uint64(len(dict.countries)) {
				badID = true
			} else if c.Ok() {
				b.rollupID[rollupCell{
					name:     uint32(name),
					country:  uint32(country),
					level:    level,
					loggedIn: loggedIn,
				}] += int64(v)
			}
		}
	}
	if err := c.Err(); err != nil {
		return b, fmt.Errorf("snapshot bucket: %w", err)
	}
	if badID {
		return corrupt("dictionary id out of range")
	}
	return b, nil
}

package realtime

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/scribe"
	"unilog/internal/warehouse"
	"unilog/internal/workload"
)

// durCfg keeps durability tests deterministic: every batch fsyncs, and the
// automatic snapshotter never fires on its own (tests cut snapshots
// explicitly).
func durCfg(shards, stripes int) Config {
	return Config{
		Shards:        shards,
		Stripes:       stripes,
		FsyncEvery:    1,
		SnapshotEvery: time.Hour,
	}
}

// feedBoth streams one deterministic mixed workload into any number of
// counters: several names, minutes, countries, and login states, n events
// total.
func feedBoth(n int, cs ...*Counter) {
	names := []string{
		"web:home:mentions:stream:avatar:profile_click",
		"web:home:timeline:stream:tweet:impression",
		"web:search:results:stream:tweet:impression",
		"iphone:home:timeline:stream:tweet:impression",
		"android:profile:header:card:follow:click",
	}
	countries := []string{"us", "jp", "uk", "br"}
	for i := 0; i < n; i++ {
		e := ev(names[i%len(names)], t0.Add(time.Duration(i%120)*time.Minute),
			int64(i%3), countries[i%len(countries)])
		for _, c := range cs {
			c.Ingest(e)
		}
	}
}

// sameAnswers asserts two counters answer a battery of queries over the
// day identically: full rollup tables, path sums, per-minute series,
// top-K, and the observed total.
func sameAnswers(t *testing.T, got, want *Counter) {
	t.Helper()
	from := t0.Truncate(24 * time.Hour)
	to := from.Add(24 * time.Hour)
	if g, w := got.Stats().Observed, want.Stats().Observed; g != w {
		t.Errorf("Observed = %d, want %d", g, w)
	}
	if g, w := got.RollupSnapshot(from, to), want.RollupSnapshot(from, to); !reflect.DeepEqual(g, w) {
		t.Errorf("RollupSnapshot diverged: %d rows vs %d rows", len(g), len(w))
	}
	for _, path := range []string{"web", "web:home", "web:home:mentions", "iphone", "android",
		"web:home:mentions:stream:avatar:profile_click", "ipad"} {
		if g, w := got.PathSum(path, from, to), want.PathSum(path, from, to); g != w {
			t.Errorf("PathSum(%q) = %d, want %d", path, g, w)
		}
	}
	if g, w := got.Series("web", t0, t0.Add(2*time.Hour)), want.Series("web", t0, t0.Add(2*time.Hour)); !reflect.DeepEqual(g, w) {
		t.Errorf("Series diverged: %v vs %v", g, w)
	}
	if g, w := got.TopK("", 5, from, to), want.TopK("", 5, from, to); !reflect.DeepEqual(g, w) {
		t.Errorf("TopK diverged: %v vs %v", g, w)
	}
	if g, w := got.RollupTotal(4, "web:*:*:*:*:impression", from, to), want.RollupTotal(4, "web:*:*:*:*:impression", from, to); g != w {
		t.Errorf("RollupTotal = %d, want %d", g, w)
	}
}

// TestKillAndRecoverMatchesNeverCrashed is the core durability guarantee:
// a durable counter that snapshots mid-stream and then dies without a
// graceful close must, after Open, answer every query exactly like a
// memory-only counter that never went down.
func TestKillAndRecoverMatchesNeverCrashed(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, durCfg(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Shards: 3, Stripes: 4})
	t.Cleanup(m.Close)

	feedBoth(400, d, m)
	d.Sync()
	if err := d.Snapshot(); err != nil {
		t.Fatalf("mid-stream snapshot: %v", err)
	}
	feedBoth(300, d, m) // tail lives only in the WAL
	d.Sync()
	m.Sync()
	d.Crash()

	r, err := Open(dir, durCfg(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, r, m)
	if r.Stats().SnapshotErrors != 0 || r.Stats().WALErrors != 0 {
		t.Errorf("recovery reported errors: %+v", r.Stats())
	}

	// A graceful Close writes a final snapshot and retires the WAL; the
	// next Open loads one file and replays nothing.
	r.Close()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("WAL not retired after Close: %v", segs)
	}
	r2, err := Open(dir, durCfg(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	sameAnswers(t, r2, m)
}

// TestRecoverFromWALOnly covers the no-snapshot path: everything lives in
// the WAL tail.
func TestRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, durCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Shards: 2, Stripes: 2})
	t.Cleanup(m.Close)
	feedBoth(250, d, m)
	d.Sync()
	m.Sync()
	d.Crash()

	r, err := Open(dir, durCfg(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Crash()
	sameAnswers(t, r, m)
}

// TestRecoverAcrossConfigChange replays a log written by a wider counter
// into a narrower one: totals are distributive, so resharding at restart
// must not change any answer.
func TestRecoverAcrossConfigChange(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, durCfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Shards: 2, Stripes: 3})
	t.Cleanup(m.Close)
	feedBoth(200, d, m)
	d.Sync()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	feedBoth(100, d, m)
	d.Sync()
	m.Sync()
	d.Crash()

	r, err := Open(dir, durCfg(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Crash()
	sameAnswers(t, r, m)
}

// oneShardScenario ingests n single-event batches (one WAL record each)
// into a 1-shard durable counter and crashes it, returning the lone live
// WAL segment for the corruption tests to damage.
func oneShardScenario(t *testing.T, dir string, n int) string {
	t.Helper()
	d, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d.Ingest(ev("web:home:timeline:stream:tweet:impression", t0.Add(time.Duration(i)*time.Second), 1, "us"))
	}
	d.Sync()
	d.Crash()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly one segment, got %v (%v)", segs, err)
	}
	return segs[0]
}

func pathSumAll(c *Counter) int64 {
	day := t0.Truncate(24 * time.Hour)
	return c.PathSum("web", day, day.Add(24*time.Hour))
}

// TestRecoverTornFinalRecord cuts bytes off the WAL tail — the torn final
// write of a crash — and requires recovery to keep the intact prefix.
func TestRecoverTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	seg := oneShardScenario(t, dir, 10)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := pathSumAll(r); got != 9 {
		t.Errorf("recovered %d events, want 9 (torn final record dropped)", got)
	}
	if got := r.Stats().Observed; got != 9 {
		t.Errorf("Observed = %d, want 9", got)
	}
	if r.Stats().WALErrors == 0 {
		t.Error("torn tail not surfaced in WALErrors")
	}
	// Recovery is stable: crash and reopen again without new ingestion
	// and nothing double counts.
	r.Crash()
	r2, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Crash()
	if got := pathSumAll(r2); got != 9 {
		t.Errorf("second recovery = %d events, want 9", got)
	}
}

// TestRecoverFlippedCRCByte flips one byte mid-log: replay must stop at
// the damaged record, keep the prefix, and stay stable across reopens.
func TestRecoverFlippedCRCByte(t *testing.T) {
	dir := t.TempDir()
	seg := oneShardScenario(t, dir, 10)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)*2/5] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	got := pathSumAll(r)
	if got >= 10 || got != r.Stats().Observed {
		t.Errorf("recovered %d events (observed %d), want a consistent prefix < 10", got, r.Stats().Observed)
	}
	if r.Stats().WALErrors == 0 {
		t.Error("corruption not surfaced in WALErrors")
	}
	r.Crash()
	r2, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Crash()
	if again := pathSumAll(r2); again != got {
		t.Errorf("second recovery = %d, first = %d — recovery not stable", again, got)
	}
}

// snapThenTail builds the snapshot-plus-WAL-tail layout: 5 events covered
// by a snapshot, 4 more only in the log, then a crash.
func snapThenTail(t *testing.T, dir string) string {
	t.Helper()
	d, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		d.Ingest(ev("web:home:timeline:stream:tweet:impression", t0, 1, "us"))
	}
	d.Sync()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Ingest(ev("web:home:timeline:stream:tweet:impression", t0.Add(time.Minute), 1, "us"))
	}
	d.Sync()
	d.Crash()
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("want exactly one snapshot, got %v (%v)", snaps, err)
	}
	return snaps[0]
}

// TestRecoverDamagedSnapshot: a missing, empty, or bit-flipped snapshot
// must not error or double count — recovery falls back to whatever WAL
// tail survives (here the 4 post-snapshot events; the 5 covered ones went
// down with the snapshot).
func TestRecoverDamagedSnapshot(t *testing.T) {
	cases := []struct {
		name   string
		damage func(t *testing.T, snap string)
	}{
		{"missing", func(t *testing.T, snap string) {
			if err := os.Remove(snap); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, snap string) {
			if err := os.Truncate(snap, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped-byte", func(t *testing.T, snap string) {
			data, err := os.ReadFile(snap)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(snap, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, snap string) {
			fi, err := os.Stat(snap)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(snap, fi.Size()/2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			snap := snapThenTail(t, dir)
			tc.damage(t, snap)
			r, err := Open(dir, durCfg(1, 1))
			if err != nil {
				t.Fatalf("recovery errored instead of degrading: %v", err)
			}
			defer r.Crash()
			if got := pathSumAll(r); got != 4 {
				t.Errorf("recovered %d events, want the 4 surviving WAL-tail events", got)
			}
		})
	}

	// Control: with the snapshot intact the same layout recovers all 9.
	t.Run("intact", func(t *testing.T) {
		dir := t.TempDir()
		snapThenTail(t, dir)
		r, err := Open(dir, durCfg(1, 1))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Crash()
		if got := pathSumAll(r); got != 9 {
			t.Errorf("recovered %d events, want 9", got)
		}
	})
}

// TestRecoverFallsBackToPreviousSnapshot: pruning keeps the previous
// snapshot around precisely so that a newest snapshot damaged on disk
// degrades to "older snapshot plus surviving WAL tail", not to an empty
// counter.
func TestRecoverFallsBackToPreviousSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(n int, at time.Time) {
		for i := 0; i < n; i++ {
			d.Ingest(ev("web:home:timeline:stream:tweet:impression", at, 1, "us"))
		}
		d.Sync()
	}
	ingest(3, t0) // phase A, covered by snapshot 1
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingest(2, t0.Add(time.Minute)) // phase B, covered only by snapshot 2
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	ingest(4, t0.Add(2*time.Minute)) // phase C, WAL tail only
	d.Crash()

	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want the newest and previous snapshots on disk, got %v (%v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, durCfg(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Crash()
	// Snapshot 1 restores phase A; phase B's segments were pruned when
	// snapshot 2 was cut, so B is lost with it; phase C's tail segments
	// sit above snapshot 2's boundary and replay cleanly. 3 + 4, never
	// 9 (that would double count) and never 4 alone (that would mean no
	// fallback).
	if got := pathSumAll(r); got != 7 {
		t.Errorf("recovered %d events, want 7 (snapshot-1 state + WAL tail)", got)
	}
}

// TestReconcileWithRecoveredCounter is the acceptance check: a day
// streamed into a durable counter, snapshotted mid-stream, killed, and
// recovered must still reconcile exactly against the warehouse batch job.
func TestReconcileWithRecoveredCounter(t *testing.T) {
	cfg := workload.DefaultConfig(day)
	cfg.Users = 60
	cfg.LoggedOutSessions = 40
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	w.RollRecords = 2000
	for i := range evs {
		if err := w.Append(&evs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	d, err := Open(dir, durCfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	b := d.NewBatcher()
	for i := range evs {
		b.Add(&evs[i])
		if i == len(evs)/2 {
			b.Flush()
			d.Sync()
			if err := d.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.Flush()
	d.Sync()
	d.Crash()

	r, err := Open(dir, durCfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Crash()
	if got := r.Stats().Observed; got != truth.Events {
		t.Errorf("recovered Observed = %d, want %d", got, truth.Events)
	}
	rep, err := ReconcileWith(fs, day, r)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("recovered counter diverged from batch: %s\nmissing: %v\nextra: %v\nmismatched: %v",
			rep, rep.Missing, rep.Extra, rep.Mismatched)
	}
	if !strings.Contains(rep.String(), "OK") {
		t.Errorf("String() = %q", rep.String())
	}
}

// TestDurableConcurrentIngestAndSnapshot hammers the durable path the way
// the race CI job wants: parallel producers, concurrent snapshots and
// queries, then a kill and a recovery that must account for every event.
func TestDurableConcurrentIngestAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := durCfg(4, 8)
	cfg.FsyncEvery = 8
	d, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const producers = 4
	const perProducer = 2000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			b := d.NewBatcher()
			for i := 0; i < perProducer; i++ {
				b.Add(ev("web:home:timeline:stream:tweet:impression",
					t0.Add(time.Duration(i%60)*time.Minute), int64(p), "us"))
			}
			b.Flush()
		}(p)
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := d.Snapshot(); err != nil && err != errClosed {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer aux.Done()
		day := t0.Truncate(24 * time.Hour)
		for {
			select {
			case <-stop:
				return
			default:
				d.PathSum("web", day, day.Add(24*time.Hour))
				d.TopK("", 3, day, day.Add(24*time.Hour))
			}
		}
	}()
	wg.Wait()
	close(stop)
	aux.Wait()
	d.Sync()
	want := int64(producers * perProducer)
	if got := d.Stats().Observed; got != want {
		t.Fatalf("live Observed = %d, want %d", got, want)
	}
	d.Crash()
	r, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Observed; got != want {
		t.Errorf("recovered Observed = %d, want %d", got, want)
	}
	if got := pathSumAll(r); got != want {
		t.Errorf("recovered PathSum = %d, want %d", got, want)
	}
}

// TestSnapshotOnMemoryCounterErrors pins the API contract: snapshots only
// exist on counters created by Open.
func TestSnapshotOnMemoryCounterErrors(t *testing.T) {
	c := New(Config{Shards: 1})
	defer c.Close()
	if err := c.Snapshot(); err == nil {
		t.Fatal("Snapshot on a memory-only counter succeeded")
	}
}

// TestStatsPersistAcrossRestart: the full activity-counter block — not
// just Observed — must survive a snapshot/restore cycle, so dashboards
// watching Stats see monotonic values across restarts.
func TestStatsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := durCfg(2, 2)
	cfg.Retention = 5 * time.Minute
	d, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One decodable tap entry, one decode error, one invalid name.
	e := ev("web:home:timeline:stream:tweet:impression", t0, 1, "us")
	d.TapBatch([]scribe.Entry{
		{Category: events.Category, Message: e.Marshal()},
		{Category: events.Category, Message: []byte("not thrift")},
	})
	d.Ingest(&events.ClientEvent{Timestamp: t0.UnixMilli(), IP: "10.0.0.1"})
	// Advance the horizon past retention, then send a straggler: one
	// eviction, one dropped-old.
	d.Ingest(ev("web:home:timeline:stream:tweet:impression", t0.Add(10*time.Minute), 1, "us"))
	d.Sync()
	d.Ingest(ev("web:home:timeline:stream:tweet:impression", t0, 1, "us"))
	d.Sync()

	st := d.Stats()
	if st.TapEntries != 2 || st.DecodeErrors != 1 || st.Invalid != 1 || st.DroppedOld != 1 {
		t.Fatalf("unexpected pre-restart stats: %+v", st)
	}
	d.Close() // final snapshot carries the block

	r, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := r.Stats()
	want := st
	want.Snapshots++ // the final snapshot Close cut
	if got != want {
		t.Errorf("stats did not carry over:\n got  %+v\n want %+v", got, want)
	}
}

// TestV1WALSegmentReplaysIntoV2Engine hand-crafts a segment in the v1
// record format (full name logged per observation, the pre-dictionary
// encoding) and requires the current engine to replay it exactly — the
// format-boundary guarantee that upgrading does not strand existing logs.
func TestV1WALSegmentReplaysIntoV2Engine(t *testing.T) {
	dir := t.TempDir()
	v1Obs := func(buf []byte, name string, minute int64, country string, loggedIn bool) []byte {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
		buf = binary.AppendUvarint(buf, uint64(minute))
		buf = binary.AppendUvarint(buf, uint64(len(country)))
		buf = append(buf, country...)
		if loggedIn {
			return append(buf, 1)
		}
		return append(buf, 0)
	}
	click := "web:home:mentions:stream:avatar:profile_click"
	impr := "iphone:home:timeline:stream:tweet:impression"
	m0 := t0.Unix() / 60

	f, err := os.Create(filepath.Join(dir, walName(0, 0)))
	if err != nil {
		t.Fatal(err)
	}
	cw := recordio.NewCRCWriter(f)
	rec := []byte{walRecordV1}
	rec = binary.AppendUvarint(rec, 3)
	rec = v1Obs(rec, click, m0, "us", true)
	rec = v1Obs(rec, click, m0, "jp", false)
	rec = v1Obs(rec, impr, m0, "us", true)
	if err := cw.Append(rec); err != nil {
		t.Fatal(err)
	}
	rec = []byte{walRecordV1}
	rec = binary.AppendUvarint(rec, 2)
	rec = v1Obs(rec, impr, m0+1, "uk", false)
	rec = v1Obs(rec, impr, m0+1, "uk", true)
	if err := cw.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay into a differently-sharded engine: v1 decoding feeds the
	// same re-digest path as v2, so routing follows the new config.
	r, err := Open(dir, durCfg(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	day := t0.Truncate(24 * time.Hour)
	end := day.Add(24 * time.Hour)
	checkReplayed := func(c *Counter, label string) {
		t.Helper()
		if got := c.Stats().Observed; got != 5 {
			t.Errorf("%s: Observed = %d, want 5", label, got)
		}
		for path, want := range map[string]int64{
			"web": 2, click: 2, "iphone": 3, impr: 3, "web:home:mentions": 2,
		} {
			if got := c.PathSum(path, day, end); got != want {
				t.Errorf("%s: PathSum(%q) = %d, want %d", label, path, got, want)
			}
		}
		if got := c.Series(impr, t0, t0.Add(2*time.Minute)); !reflect.DeepEqual(got, []int64{1, 2}) {
			t.Errorf("%s: Series(impr) = %v, want [1 2]", label, got)
		}
		snap := c.RollupSnapshot(day, end)
		k := analytics.RollupKey{Level: 4, Name: "iphone:*:*:*:*:impression", Country: "uk", LoggedIn: true}
		if snap[k] != 1 {
			t.Errorf("%s: rollup[%+v] = %d, want 1", label, k, snap[k])
		}
	}
	checkReplayed(r, "v1 replay")

	// Round-trip the recovered state through a v2 snapshot and reopen:
	// the upgraded on-disk form must answer identically.
	r.Close()
	r2, err := Open(dir, durCfg(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	checkReplayed(r2, "after v2 snapshot round-trip")
}

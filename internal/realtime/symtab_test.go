package realtime

import (
	"fmt"
	"sync"
	"testing"

	"unilog/internal/events"
)

func TestSymtabInternCachesFullDigest(t *testing.T) {
	tab := newSymtab(4, 8)
	n := events.MustParseName("web:home:mentions:stream:avatar:profile_click")
	sym, cid, err := tab.resolve(n, "us")
	if err != nil {
		t.Fatal(err)
	}
	again, cid2, err := tab.resolve(n, "us")
	if err != nil {
		t.Fatal(err)
	}
	if sym != again || cid != cid2 {
		t.Fatalf("second resolve returned a different sym (%p vs %p) or country (%d vs %d)", sym, again, cid, cid2)
	}
	// The same name through the replay path resolves to the same sym.
	byFull, _, err := tab.resolveFull(n.String(), "us")
	if err != nil {
		t.Fatal(err)
	}
	if byFull != sym {
		t.Fatalf("resolveFull returned a different sym")
	}
	// Shard and stripe match the hash routing digest() used before.
	h := hash32(n.String())
	if sym.shard != h%4 || sym.stripe != (h>>16)%8 {
		t.Fatalf("routing = (%d, %d), want (%d, %d)", sym.shard, sym.stripe, h%4, (h>>16)%8)
	}
	// The six prefixes resolve to their own strings, parents chained.
	wantPrefixes := []string{
		"web",
		"web:home",
		"web:home:mentions",
		"web:home:mentions:stream",
		"web:home:mentions:stream:avatar",
		"web:home:mentions:stream:avatar:profile_click",
	}
	for d, want := range wantPrefixes {
		id := sym.prefixID[d]
		if got := tab.pathString(id); got != want {
			t.Errorf("prefix[%d] = %q, want %q", d, got, want)
		}
		depth, parent := tab.pathMeta(id)
		if int(depth) != d {
			t.Errorf("depth(%q) = %d, want %d", want, depth, d)
		}
		if d == 0 {
			if parent != noParent {
				t.Errorf("parent(%q) = %d, want noParent", want, parent)
			}
		} else if parent != sym.prefixID[d-1] {
			t.Errorf("parent(%q) = %d, want %d", want, parent, sym.prefixID[d-1])
		}
	}
	// Rollup level 0 is the full name; higher levels wildcard per §3.2.
	if sym.rollupID[0] != sym.prefixID[events.NumComponents-1] {
		t.Errorf("rollupID[0] != full-name path ID")
	}
	if got := tab.pathString(sym.rollupID[2]); got != "web:home:mentions:*:*:profile_click" {
		t.Errorf("rollup[2] = %q", got)
	}
}

func TestSymtabSharesPrefixIDs(t *testing.T) {
	tab := newSymtab(2, 2)
	a, _, err := tab.resolve(events.MustParseName("web:home:mentions:stream:avatar:profile_click"), "us")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tab.resolve(events.MustParseName("web:home:timeline:stream:tweet:impression"), "jp")
	if err != nil {
		t.Fatal(err)
	}
	if a.prefixID[0] != b.prefixID[0] || a.prefixID[1] != b.prefixID[1] {
		t.Errorf("shared prefixes got distinct IDs: %v vs %v", a.prefixID[:2], b.prefixID[:2])
	}
	if a.prefixID[2] == b.prefixID[2] {
		t.Errorf("distinct sections share an ID")
	}
	if a.id == b.id {
		t.Errorf("distinct names share a name ID")
	}
}

func TestSymtabInvalidNameNotInterned(t *testing.T) {
	tab := newSymtab(2, 2)
	bad := events.EventName{Client: "web"} // empty action
	if _, _, err := tab.resolve(bad, "us"); err == nil {
		t.Fatal("invalid name resolved")
	}
	if _, _, err := tab.resolveFull("not-a-name", "us"); err == nil {
		t.Fatal("invalid full name resolved")
	}
	if len(tab.syms) != 0 {
		t.Fatalf("invalid names were interned: %d syms", len(tab.syms))
	}
}

// TestSymtabConcurrentResolve hammers the read-mostly table from many
// goroutines resolving an overlapping name set; every goroutine must see
// the same sym for the same name (run under -race in CI).
func TestSymtabConcurrentResolve(t *testing.T) {
	tab := newSymtab(4, 8)
	const goroutines = 8
	names := make([]events.EventName, 32)
	for i := range names {
		names[i] = events.MustParseName(fmt.Sprintf("web:page%d:sec:stream:tweet:action%d", i%7, i%5))
	}
	got := make([][]*nameSym, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		got[g] = make([]*nameSym, len(names))
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 200; rep++ {
				for i, n := range names {
					sym, _, err := tab.resolve(n, "us")
					if err != nil {
						t.Error(err)
						return
					}
					if got[g][i] == nil {
						got[g][i] = sym
					} else if got[g][i] != sym {
						t.Errorf("goroutine %d saw two syms for %v", g, n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range names {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutines disagree on sym for name %d", i)
			}
		}
	}
	if len(tab.syms) != len(uniqueNames(names)) {
		t.Fatalf("interned %d syms, want %d", len(tab.syms), len(uniqueNames(names)))
	}
}

func uniqueNames(ns []events.EventName) map[events.EventName]bool {
	m := make(map[events.EventName]bool)
	for _, n := range ns {
		m[n] = true
	}
	return m
}

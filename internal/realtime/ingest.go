package realtime

import (
	"time"

	"unilog/internal/events"
	"unilog/internal/scribe"
)

// TapBatch observes one batch of Scribe entries. Assign it to
// scribe.Aggregator.Tap to make an aggregator fan its accepted
// client_events into the counters; entries of other categories pass
// through uncounted. Safe for concurrent use by many aggregators.
func (c *Counter) TapBatch(batch []scribe.Entry) {
	defer tmTapBatchNs.ObserveSince(time.Now())
	b := c.NewBatcher()
	for i := range batch {
		if batch[i].Category != events.Category {
			continue
		}
		c.tapEntries.Add(1)
		var e events.ClientEvent
		if err := e.Unmarshal(batch[i].Message); err != nil {
			c.decodeErrors.Add(1)
			continue
		}
		b.Add(&e)
	}
	b.Flush()
}

// Ingest counts one already-decoded event. For bulk loads prefer a
// Batcher, which amortizes the channel send.
func (c *Counter) Ingest(e *events.ClientEvent) {
	o, shard, ok := c.observe(e)
	if !ok {
		return
	}
	c.send(shard, []obs{o})
}

// Batcher accumulates per-shard batches of observations and ships each
// when it reaches Config.MaxBatch. One Batcher serves one producer
// goroutine; create one per goroutine. Buffers cycle through the
// counter's batch pool — a drain goroutine returns each batch after
// applying it — so a producer in steady state allocates nothing.
type Batcher struct {
	c   *Counter
	per [][]obs
}

// NewBatcher returns an empty batcher bound to the counter.
func (c *Counter) NewBatcher() *Batcher {
	return &Batcher{c: c, per: make([][]obs, len(c.shards))}
}

// Add digests and buffers one event, flushing its shard's batch if full.
func (b *Batcher) Add(e *events.ClientEvent) {
	o, shard, ok := b.c.observe(e)
	if !ok {
		return
	}
	buf := b.per[shard]
	if buf == nil {
		buf = (*b.c.batchPool.Get().(*[]obs))[:0]
	}
	buf = append(buf, o)
	if len(buf) >= b.c.cfg.MaxBatch {
		b.c.send(shard, buf)
		buf = nil
	}
	b.per[shard] = buf
}

// Flush ships every non-empty shard batch. Call when the producer is done
// (or wants its writes visible after the next Sync).
func (b *Batcher) Flush() {
	for shard, batch := range b.per {
		if len(batch) > 0 {
			b.c.send(shard, batch)
			b.per[shard] = nil
		}
	}
}

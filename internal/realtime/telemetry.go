package realtime

import (
	"unilog/internal/telemetry"
)

// Telemetry instruments for the realtime vertical, resolved once at init
// so the ingest legs (tap → batch → stripe apply → WAL append/fsync)
// record through pre-fetched atomic handles — no lookups, no allocation
// on the hot path. Counters and histograms here are process-global
// totals across every Counter instance; per-instance Stats fields are
// wired through as gauges by Publish instead of being duplicated.
var (
	tmIngestEvents  = telemetry.GetCounter("realtime.ingest.events")
	tmIngestBatches = telemetry.GetCounter("realtime.ingest.batches")
	tmWALBytes      = telemetry.GetCounter("realtime.wal.bytes")

	tmTapBatchNs   = telemetry.GetHistogram("realtime.tap.batch.ns")
	tmApplyBatchNs = telemetry.GetHistogram("realtime.apply.batch.ns")
	tmWALAppendNs  = telemetry.GetHistogram("realtime.wal.append.ns")
	tmWALFsyncNs   = telemetry.GetHistogram("realtime.wal.fsync.ns")
	tmSnapshotNs   = telemetry.GetHistogram("realtime.snapshot.write.ns")

	tmQueryPathSumNs = telemetry.GetHistogram("realtime.query.pathsum.ns")
	tmQuerySeriesNs  = telemetry.GetHistogram("realtime.query.series.ns")
	tmQueryTopKNs    = telemetry.GetHistogram("realtime.query.topk.ns")
	tmQueryRollupNs  = telemetry.GetHistogram("realtime.query.rollup.ns")
)

// Publish wires this counter's live Stats fields and queue state into
// reg as snapshot-time gauges (nil means telemetry.Default). Gauges read
// the same atomics Stats() reads — nothing is double-counted. Publish is
// last-wins per name: after a crash/recover cycle, calling it on the
// recovered counter repoints the gauges at the live instance.
func (c *Counter) Publish(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.Default
	}
	reg.GaugeFunc("realtime.observed.events", func() int64 { return c.observed.Load() })
	reg.GaugeFunc("realtime.queue.depth", func() int64 {
		var n int64
		for _, s := range c.shards {
			n += int64(len(s.ch))
		}
		return n
	})
	reg.GaugeFunc("realtime.queue.full_waits", func() int64 { return c.queueFull.Load() })
	reg.GaugeFunc("realtime.tap.entries", func() int64 { return c.tapEntries.Load() })
	reg.GaugeFunc("realtime.tap.decode_errors", func() int64 { return c.decodeErrors.Load() })
	reg.GaugeFunc("realtime.dropped_old.events", func() int64 { return c.droppedOld.Load() })
	reg.GaugeFunc("realtime.wal.batches", func() int64 { return c.walBatches.Load() })
	reg.GaugeFunc("realtime.wal.errors", func() int64 { return c.walErrors.Load() })
	reg.GaugeFunc("realtime.wal.fsyncs", func() int64 { return c.fsyncs.Load() })
	reg.GaugeFunc("realtime.snapshot.count", func() int64 { return c.snapshots.Load() })
	reg.GaugeFunc("realtime.snapshot.errors", func() int64 { return c.snapErrors.Load() })
}

package realtime

import (
	"strings"
	"sync"

	"unilog/internal/events"
)

// The symbol table is the hot-path optimization the §3 namespace makes
// possible: millions of events per minute draw their names from a small,
// slowly-growing set, so everything derivable from a name — its six
// hierarchy prefixes, its five §3.2 rollup names, its shard and stripe
// routing — is computed once, the first time the name is seen, and cached
// behind a dense integer ID. After that, digesting an event is one
// read-locked map lookup and the counters increment integer-keyed cells
// instead of hashing strings.
//
// Two ID spaces cover the namespace:
//
//   - a *name* ID per distinct full event name (dense intern order; this
//     is also the WAL v2 dictionary key), each owning a nameSym with the
//     cached digest;
//   - a *path* ID per distinct counter key — every prefix of every name
//     plus every rolled-up name — carrying the string, its depth, and its
//     parent path, which is what lets TopK filter children without
//     touching a string.
//
// Countries get the same treatment in a third, tiny space.
//
// The table is read-mostly: lookups take the read lock; the write lock is
// taken only the first time a name (or country) appears, and entries are
// immutable once published, so a *nameSym handed out under RLock stays
// valid forever. IDs are append-only and never reused, which is what the
// snapshot dictionary and the WAL v2 per-segment dictionaries rely on.

// noParent marks a depth-0 path (a client, e.g. "web") in pathInfo.parent.
const noParent = ^uint32(0)

// nameSym is the cached digest of one full event name: everything the old
// per-event digest() recomputed, now paid once per distinct name.
type nameSym struct {
	id     uint32 // dense name ID, the WAL v2 dictionary key
	full   string
	shard  uint32
	stripe uint32
	// prefixID[d] is the path ID of the first d+1 components.
	prefixID [events.NumComponents]uint32
	// rollupID[l] is the path ID of the level-l rolled name of §3.2.
	rollupID [events.NumRollupLevels]uint32
}

// pathInfo describes one interned counter key.
type pathInfo struct {
	str    string
	parent uint32 // path ID of the parent path, noParent at depth 0
	depth  uint8  // number of ':' in str
}

// symtab is a concurrent, read-mostly intern table bound to one Counter
// (shard and stripe routing depend on the counter's configuration).
type symtab struct {
	shards, stripes uint32

	mu     sync.RWMutex
	byName map[events.EventName]*nameSym
	byFull map[string]*nameSym
	syms   []*nameSym // name ID -> sym

	pathID map[string]uint32
	paths  []pathInfo // path ID -> info

	countryID map[string]uint32
	countries []string // country ID -> code
}

func newSymtab(shards, stripes int) *symtab {
	return &symtab{
		shards:    uint32(shards),
		stripes:   uint32(stripes),
		byName:    make(map[events.EventName]*nameSym),
		byFull:    make(map[string]*nameSym),
		pathID:    make(map[string]uint32),
		countryID: make(map[string]uint32),
	}
}

// resolve is the live-ingest fast path: one RLock covers both the name and
// the country. A hit skips validation entirely — a name only enters the
// table after validating once. The write-locked slow path runs once per
// distinct (name, country).
func (t *symtab) resolve(n events.EventName, country string) (*nameSym, uint32, error) {
	t.mu.RLock()
	sym, ok := t.byName[n]
	cid, cok := t.countryID[country]
	t.mu.RUnlock()
	if ok && cok {
		return sym, cid, nil
	}
	if !ok {
		if err := n.Validate(); err != nil {
			return nil, 0, err
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !ok {
		sym = t.internLocked(n)
	}
	if !cok {
		cid = t.countryLocked(country)
	}
	return sym, cid, nil
}

// resolveFull is resolve keyed by the colon-joined name — the WAL-replay
// path, where names arrive as logged strings. A hit costs one string map
// lookup; only a first-seen name pays the parse and validation.
func (t *symtab) resolveFull(full, country string) (*nameSym, uint32, error) {
	t.mu.RLock()
	sym, ok := t.byFull[full]
	cid, cok := t.countryID[country]
	t.mu.RUnlock()
	if ok && cok {
		return sym, cid, nil
	}
	if !ok {
		n, err := events.ParseName(full)
		if err != nil {
			return nil, 0, err
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		sym = t.internLocked(n)
		return sym, t.countryLocked(country), nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return sym, t.countryLocked(country), nil
}

// internLocked builds and publishes the digest of a validated name.
// Callers hold the write lock.
func (t *symtab) internLocked(n events.EventName) *nameSym {
	if sym, ok := t.byName[n]; ok {
		return sym
	}
	full := n.String()
	sym := &nameSym{id: uint32(len(t.syms)), full: full}
	h := hash32(full)
	sym.stripe = (h >> 16) % t.stripes
	sym.shard = h % t.shards
	d := 0
	for i := 0; i < len(full); i++ {
		if full[i] == ':' {
			sym.prefixID[d] = t.internPathLocked(full[:i])
			d++
		}
	}
	sym.prefixID[events.NumComponents-1] = t.internPathLocked(full)
	sym.rollupID[0] = sym.prefixID[events.NumComponents-1]
	for lvl := 1; lvl < events.NumRollupLevels; lvl++ {
		sym.rollupID[lvl] = t.internPathLocked(n.Rollup(events.RollupLevel(lvl)).String())
	}
	t.syms = append(t.syms, sym)
	t.byName[n] = sym
	t.byFull[full] = sym
	return sym
}

// internPathLocked interns one counter key, parents first, so every path's
// parent already has an ID. Callers hold the write lock.
func (t *symtab) internPathLocked(s string) uint32 {
	if id, ok := t.pathID[s]; ok {
		return id
	}
	info := pathInfo{str: s, parent: noParent}
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		info.parent = t.internPathLocked(s[:i])
		info.depth = t.paths[info.parent].depth + 1
	}
	id := uint32(len(t.paths))
	t.pathID[s] = id
	t.paths = append(t.paths, info)
	return id
}

func (t *symtab) countryLocked(s string) uint32 {
	if id, ok := t.countryID[s]; ok {
		return id
	}
	id := uint32(len(t.countries))
	t.countryID[s] = id
	t.countries = append(t.countries, s)
	return id
}

// internPath interns a bare counter key outside the ingest path — snapshot
// load, where aggregated per-path counts arrive without their full names.
func (t *symtab) internPath(s string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.internPathLocked(s)
}

// internPaths interns a whole dictionary of counter keys under one write
// lock, returning old-ID (slice index) → new-ID. This is the snapshot
// remap builder: every bucket cell in the file then translates with one
// array index instead of a string hash and per-key lock.
func (t *symtab) internPaths(ss []string) []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, len(ss))
	for i, s := range ss {
		out[i] = t.internPathLocked(s)
	}
	return out
}

// internCountries is internPaths for the country table.
func (t *symtab) internCountries(ss []string) []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]uint32, len(ss))
	for i, s := range ss {
		out[i] = t.countryLocked(s)
	}
	return out
}

// country interns a country code outside the ingest path.
func (t *symtab) country(s string) uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.countryLocked(s)
}

// pathOf resolves a query string to its path ID; a miss means the path has
// never been counted.
func (t *symtab) pathOf(s string) (uint32, bool) {
	t.mu.RLock()
	id, ok := t.pathID[s]
	t.mu.RUnlock()
	return id, ok
}

// pathString resolves a path ID back to its string at query time.
func (t *symtab) pathString(id uint32) string {
	t.mu.RLock()
	s := t.paths[id].str
	t.mu.RUnlock()
	return s
}

// pathMeta reports a path's depth and parent ID.
func (t *symtab) pathMeta(id uint32) (depth uint8, parent uint32) {
	t.mu.RLock()
	p := t.paths[id]
	t.mu.RUnlock()
	return p.depth, p.parent
}

// countryName resolves a country ID back to its code at query time.
func (t *symtab) countryName(id uint32) string {
	t.mu.RLock()
	s := t.countries[id]
	t.mu.RUnlock()
	return s
}

// accumulateChildren folds one ID-keyed counter table into acc, keeping
// only the direct children of parent (noParent selects the depth-0
// roots) — the filter runs during accumulation, so TopK's working set is
// the matching children, not every path in the window. One RLock per
// call; safe under a stripe lock because no code path acquires the
// symtab lock first and a stripe lock second.
func (t *symtab) accumulateChildren(acc, counts map[uint32]int64, parent uint32, depth uint8) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id, n := range counts {
		p := &t.paths[id]
		if p.depth != depth {
			continue
		}
		if parent != noParent && p.parent != parent {
			continue
		}
		acc[id] += n
	}
}

// resolveCounts turns an ID-keyed accumulator into named counts — the
// string resolution at the edge of a query, one lock for the whole pass.
func (t *symtab) resolveCounts(acc map[uint32]int64) []PathCount {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]PathCount, 0, len(acc))
	for id, n := range acc {
		out = append(out, PathCount{Path: t.paths[id].str, Count: n})
	}
	return out
}

// dict snapshots both string tables — the snapshot file's dictionary. The
// copies index exactly by ID, and because IDs are append-only they cover
// every ID any concurrently-captured bucket can reference.
func (t *symtab) dict() (paths, countries []string) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	paths = make([]string, len(t.paths))
	for i := range t.paths {
		paths[i] = t.paths[i].str
	}
	countries = make([]string, len(t.countries))
	copy(countries, t.countries)
	return paths, countries
}

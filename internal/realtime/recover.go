package realtime

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"unilog/internal/recordio"
	"unilog/internal/telemetry"
)

// Open starts a durable counter rooted at dir, recovering whatever a
// previous incarnation left there: it loads the newest valid snapshot,
// replays each shard's WAL tail on top, and only then starts the drain
// goroutines and the periodic snapshotter. dir overrides cfg.WALDir.
//
// Recovery is deliberately tolerant — a crash can leave a torn final WAL
// record, a half-written snapshot temp file, or segments a finished
// snapshot did not get to delete — and must always come up with a
// consistent counter rather than an error or a double count:
//
//   - a snapshot that fails to parse end-to-end is ignored in favor of the
//     next older one (or an empty state);
//   - WAL segments below the snapshot's recorded boundary are skipped,
//     whether or not the snapshotter managed to delete them;
//   - a torn or corrupt record ends its segment: replay keeps the
//     segment's intact prefix, truncates the file down to it (so the
//     damage cannot shadow later, healthy segments on the next
//     recovery), and moves on to the next segment;
//   - appending always begins in a fresh segment, never after a tear.
//
// Replay re-digests every logged name through the counter's own symbol
// table — built fresh here, snapshot dictionary first, then first-seen
// WAL names — so routing and IDs always follow the current configuration:
// a log or snapshot written under different shard/stripe settings (or a
// different ID assignment) recovers exactly. Both WAL record formats
// load: v2 (per-segment dictionary) and the v1 full-name records that
// predate it.
//
// Counts recovered this way are exact for everything the WAL fsync
// cadence made durable: after a clean Close, or a Crash with the tail
// flushed, a reopened counter answers every query identically to one
// that never went down — including the activity counters in Stats, which
// a v2 snapshot carries across the restart.
func Open(dir string, cfg Config) (*Counter, error) {
	cfg.WALDir = dir
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	c := allocCounter(cfg)
	c.durable = true

	span := telemetry.StartSpan("realtime.recovery")

	snaps, segs, maxSnapSeq, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	c.snapSeq = maxSnapSeq

	var header snapHeader
	snapSpan := span.Child("snapshot")
	for _, s := range snaps { // newest first
		h, dict, buckets, err := loadSnapshot(filepath.Join(dir, s.name))
		if err != nil {
			continue // superseded at the next snapshot; recovery moves on
		}
		header = h
		c.observedBase = h.observed
		c.observed.Store(h.observed)
		c.maxMinute.Store(h.maxMinute)
		c.restoreStats(h.stats)
		// One batch intern of the file's dictionary builds the old-ID →
		// new-ID remap; every v2 bucket cell then loads by array index.
		rm := idRemap{
			paths:     c.tab.internPaths(dict.paths),
			countries: c.tab.internCountries(dict.countries),
		}
		for i := range buckets {
			c.loadBucket(&buckets[i], &rm)
		}
		break
	}
	snapSpan.End()

	// Replay each logged shard's surviving segments, oldest first,
	// re-digesting every record so routing follows the current
	// configuration even if the log was written under a different one.
	walSpan := span.Child("wal")
	for shard, files := range segs {
		sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
		from := int64(0)
		if shard < len(header.next) {
			from = header.next[shard]
		}
		for _, f := range files {
			if f.seq < from {
				continue // covered by the snapshot
			}
			if err := c.replaySegment(filepath.Join(dir, f.name)); err != nil {
				// The segment could not even be repaired (e.g. the
				// truncate failed): stop this shard's chain rather than
				// risk replaying past an unhealed tear twice.
				break
			}
		}
	}
	walSpan.End()

	// Append into fresh segments strictly after anything on disk or
	// recorded in the snapshot header.
	for i, s := range c.shards {
		seq := int64(0)
		if i < len(header.next) {
			seq = header.next[i]
		}
		for _, f := range segs[i] {
			if f.seq+1 > seq {
				seq = f.seq + 1
			}
		}
		w, err := openWAL(dir, i, seq)
		if err != nil {
			return nil, fmt.Errorf("realtime: open wal shard %d: %w", i, err)
		}
		s.wal = w
	}

	span.End()
	c.start()
	return c, nil
}

// restoreStats seeds the activity counters from a recovered snapshot
// header, so dashboards watching Stats see monotonic values across a
// restart. Observed is restored separately via observedBase, which the
// snapshot protocol keeps exact.
func (c *Counter) restoreStats(s Stats) {
	c.droppedBase = s.DroppedOld
	c.evictedBase = s.Evicted
	c.tapEntries.Store(s.TapEntries)
	c.decodeErrors.Store(s.DecodeErrors)
	c.invalid.Store(s.Invalid)
	c.droppedOld.Store(s.DroppedOld)
	c.evicted.Store(s.Evicted)
	c.queueFull.Store(s.QueueFull)
	c.walBatches.Store(s.WALBatches)
	c.walBytes.Store(s.WALBytes)
	c.walErrors.Store(s.WALErrors)
	c.fsyncs.Store(s.Fsyncs)
	c.snapshots.Store(s.Snapshots)
	c.snapErrors.Store(s.SnapshotErrors)
}

// dirEntry is one parsed snapshot or segment file name.
type dirEntry struct {
	name string
	seq  int64
}

// scanDir classifies dir's contents: snapshots newest-first, WAL segments
// grouped by shard index, and the highest snapshot sequence seen (valid
// or not, so new snapshots always supersede leftovers).
func scanDir(dir string) (snaps []dirEntry, segs map[int][]dirEntry, maxSnapSeq int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, 0, err
	}
	segs = map[int][]dirEntry{}
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSnapName(name); ok {
			snaps = append(snaps, dirEntry{name, seq})
			if seq > maxSnapSeq {
				maxSnapSeq = seq
			}
		} else if shard, seq, ok := parseWALName(name); ok {
			segs[shard] = append(segs[shard], dirEntry{name, seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	return snaps, segs, maxSnapSeq, nil
}

// loadSnapshot parses a whole snapshot file into memory, validating every
// frame before any of it is applied — a snapshot is all-or-nothing. v2
// files carry a dictionary record between the header and the buckets; v1
// files go straight to string-keyed buckets.
func loadSnapshot(path string) (snapHeader, snapDict, []snapBucket, error) {
	f, err := os.Open(path)
	if err != nil {
		return snapHeader{}, snapDict{}, nil, err
	}
	defer f.Close()
	r := recordio.NewCRCReader(f)
	rec, err := r.Next()
	if err != nil {
		return snapHeader{}, snapDict{}, nil, fmt.Errorf("realtime: snapshot %s: %w", filepath.Base(path), errOr(err))
	}
	header, err := decodeSnapHeader(rec)
	if err != nil {
		return snapHeader{}, snapDict{}, nil, err
	}
	var dict snapDict
	if header.version >= snapRecordVersion {
		rec, err := r.Next()
		if err != nil {
			return snapHeader{}, snapDict{}, nil, fmt.Errorf("realtime: snapshot %s: %w", filepath.Base(path), errOr(err))
		}
		if dict, err = decodeSnapDict(rec); err != nil {
			return snapHeader{}, snapDict{}, nil, err
		}
	}
	var buckets []snapBucket
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return header, dict, buckets, nil
		}
		if err != nil {
			return snapHeader{}, snapDict{}, nil, fmt.Errorf("realtime: snapshot %s: %w", filepath.Base(path), err)
		}
		b, err := decodeBucket(rec, header.version, &dict)
		if err != nil {
			return snapHeader{}, snapDict{}, nil, err
		}
		buckets = append(buckets, b)
	}
}

// errOr maps a clean-EOF (empty file) to a recognizable corruption error.
func errOr(err error) error {
	if err == io.EOF {
		return fmt.Errorf("%w: empty snapshot", recordio.ErrCorrupt)
	}
	return err
}

// idRemap translates one snapshot file's dictionary IDs into the
// recovering counter's symbol-table IDs: index by old ID, read new ID.
// Built once per file by batch-interning the dictionary (internPaths /
// internCountries), it replaces the per-cell string round-trip the load
// path used to pay — decodeBucket's range checks guarantee every v2 cell
// ID indexes within these slices.
type idRemap struct {
	paths     []uint32
	countries []uint32
}

// loadBucket merges one snapshot bucket into the stripes. v2 cells
// arrive ID-keyed and translate through rm with two array reads; v1
// cells arrive string-keyed and re-intern into this counter's symbol
// table per key. Shard and stripe indices are taken modulo the current
// configuration, so a snapshot from a differently-sized counter still
// loads — totals are distributive across placement, and collisions
// merge.
func (c *Counter) loadBucket(sb *snapBucket, rm *idRemap) {
	if sb.minute <= c.maxMinute.Load()-int64(c.buckets) {
		return // behind the retention horizon
	}
	s := c.shards[sb.shard%len(c.shards)]
	st := &s.stripes[sb.stripe%c.cfg.Stripes]
	b := &st.ring[int(sb.minute)%c.buckets]
	switch {
	case b.prefix == nil || b.minute < sb.minute:
		b.minute = sb.minute
		b.prefix = make(map[uint32]int64, len(sb.prefix)+len(sb.prefixID))
		b.rollup = make(map[rollupCell]int64, len(sb.rollup)+len(sb.rollupID))
	case b.minute == sb.minute:
		// Merge below.
	default:
		// The slot already holds a newer minute; this bucket is behind
		// the horizon by ring geometry.
		return
	}
	for id, v := range sb.prefixID {
		b.prefix[rm.paths[id]] += v
	}
	for cell, v := range sb.rollupID {
		b.rollup[rollupCell{
			name:     rm.paths[cell.name],
			country:  rm.countries[cell.country],
			level:    cell.level,
			loggedIn: cell.loggedIn,
		}] += v
	}
	for k, v := range sb.prefix {
		b.prefix[c.tab.internPath(k)] += v
	}
	for k, v := range sb.rollup {
		b.rollup[rollupCell{
			name:     c.tab.internPath(k.Name),
			country:  c.tab.country(k.Country),
			level:    uint8(k.Level),
			loggedIn: k.LoggedIn,
		}] += v
	}
}

// replaySegment re-applies every intact batch record in one WAL segment,
// feeding a per-segment decoder (v2 records grow its dictionaries in
// order; v1 records need none). On a torn or corrupt record it applies
// the intact prefix, truncates the file down to that prefix (counting the
// damage in WALErrors), and reports success so the shard's chain
// continues; it errors only when the segment cannot be read or repaired.
func (c *Counter) replaySegment(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	r := recordio.NewCRCReader(f)
	dec := &walDecoder{}
	var intact int64 // bytes of whole, checksummed records applied
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			f.Close()
			return nil
		}
		if err != nil {
			f.Close()
			c.walErrors.Add(1)
			return os.Truncate(path, intact)
		}
		err = dec.decodeBatch(rec, func(name string, minute int64, country string, loggedIn bool) error {
			o, shardIdx, err := c.digestFull(name, minute, country, loggedIn)
			if err != nil {
				c.invalid.Add(1)
				return nil
			}
			s := c.shards[shardIdx]
			if c.applyOne(s, &s.stripes[o.sym.stripe], &o) {
				c.observed.Add(1)
			}
			return nil
		})
		if err != nil {
			// Structurally damaged batch behind a valid checksum: treat
			// like any other corruption at this record's boundary.
			f.Close()
			c.walErrors.Add(1)
			return os.Truncate(path, intact)
		}
		intact += int64(binary.PutUvarint(lenBuf[:], uint64(len(rec)))) + 4 + int64(len(rec))
	}
}

package realtime

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"unilog/internal/recordio"
)

// The write-ahead log makes the counters durable without slowing the hot
// path below its memory-only throughput class: each shard's drain
// goroutine appends whole batches (one CRC-framed record per batch, see
// recordio.CRCWriter) to its own segment file before applying them, so
// logging parallelizes with sharding and costs one buffered write per
// batch, not per event. fsync is amortized over Config.FsyncEvery batches.
//
// A WAL record is the minimum needed to re-digest its observations on
// replay: per event, the full hierarchical name, the Unix minute, the
// country, and the logged-in bit. Prefixes, rollup names, and shard/stripe
// routing are all derived from the name, so they are recomputed at
// recovery time against the recovering counter's own configuration —
// a log written by a 4-shard counter replays correctly into an 8-shard
// one.
//
// Segments are named wal-<shard>-<seq>.log. A snapshot rotates every
// shard to a fresh segment and then deletes the segments it covers, so
// the set of files on disk is always: the newest snapshot plus the
// segments appended since it was cut (plus, transiently, garbage an
// interrupted snapshot failed to delete, which recovery ignores).

// walRecordVersion guards the batch encoding; bump on format change.
const walRecordVersion = 1

// walName formats a segment file name.
func walName(shard int, seq int64) string {
	return fmt.Sprintf("wal-%03d-%010d.log", shard, seq)
}

// parseWALName inverts walName.
func parseWALName(name string) (shard int, seq int64, ok bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, 0, false
	}
	shardStr, seqStr, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, false
	}
	s, err1 := strconv.Atoi(shardStr)
	q, err2 := strconv.ParseInt(seqStr, 10, 64)
	if err1 != nil || err2 != nil || s < 0 || q < 0 {
		return 0, 0, false
	}
	return s, q, true
}

// walWriter appends CRC-framed batch records to one shard's current
// segment. It is owned by the shard's drain goroutine once the counter is
// running; only open/rotate/close bookkeeping happens elsewhere, and only
// while the drains are parked (startup, shutdown, or a snap message).
type walWriter struct {
	dir   string
	shard int
	seq   int64 // current segment sequence number

	f  *os.File
	bw *bufio.Writer
	cw *recordio.CRCWriter

	sinceSync int    // batches appended since the last fsync
	scratch   []byte // batch encoding buffer, reused
}

// openWAL creates (or truncates) the segment walName(shard, seq) and
// returns a writer positioned at its start. Recovery always starts a
// fresh segment rather than appending after a possibly-torn tail.
func openWAL(dir string, shard int, seq int64) (*walWriter, error) {
	f, err := os.Create(filepath.Join(dir, walName(shard, seq)))
	if err != nil {
		return nil, err
	}
	w := &walWriter{dir: dir, shard: shard, seq: seq, f: f}
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.cw = recordio.NewCRCWriter(w.bw)
	return w, nil
}

// append logs one batch: encode, frame, flush to the OS, and fsync every
// fsyncEvery batches. It returns the framed size and whether this append
// fsynced.
func (w *walWriter) append(batch []obs, fsyncEvery int) (int64, bool, error) {
	w.scratch = encodeBatch(w.scratch[:0], batch)
	before := w.cw.Bytes()
	if err := w.cw.Append(w.scratch); err != nil {
		return 0, false, err
	}
	// Flush the bufio layer every batch: once this returns, a process
	// kill cannot lose the batch, only an OS crash can (until the next
	// fsync).
	if err := w.bw.Flush(); err != nil {
		return 0, false, err
	}
	w.sinceSync++
	if w.sinceSync < fsyncEvery {
		return w.cw.Bytes() - before, false, nil
	}
	w.sinceSync = 0
	return w.cw.Bytes() - before, true, w.f.Sync()
}

// rotate durably finishes the current segment and opens the next one,
// returning the new segment's sequence number. Everything appended so far
// lives in segments < the returned seq.
func (w *walWriter) rotate() (int64, error) {
	if err := w.close(); err != nil {
		return 0, err
	}
	nw, err := openWAL(w.dir, w.shard, w.seq+1)
	if err != nil {
		return 0, err
	}
	*w = *nw
	return w.seq, nil
}

// close flushes, fsyncs, and closes the current segment file.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walAppend is the drain-goroutine side: it logs the batch and folds the
// outcome into the counter's stats. A failed append degrades that batch to
// memory-only rather than stalling ingestion; WALErrors records the loss.
func (c *Counter) walAppend(s *shard, batch []obs) {
	n, synced, err := s.wal.append(batch, c.cfg.FsyncEvery)
	if err != nil {
		c.walErrors.Add(1)
		return
	}
	c.walBatches.Add(1)
	c.walBytes.Add(n)
	if synced {
		c.fsyncs.Add(1)
	}
}

// encodeBatch appends the wire form of a batch to buf: a version byte, the
// observation count, then per observation the full name, minute, country,
// and logged-in bit, all length- or varint-delimited.
func encodeBatch(buf []byte, batch []obs) []byte {
	buf = append(buf, walRecordVersion)
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	for i := range batch {
		o := &batch[i]
		full := o.prefixes[len(o.prefixes)-1]
		buf = binary.AppendUvarint(buf, uint64(len(full)))
		buf = append(buf, full...)
		buf = binary.AppendUvarint(buf, uint64(o.minute))
		buf = binary.AppendUvarint(buf, uint64(len(o.country)))
		buf = append(buf, o.country...)
		if o.loggedIn {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// decodeBatch walks one WAL record, invoking fn per logged observation.
// Any structural damage surfaces as recordio.ErrCorrupt so replay treats
// it like a failed checksum.
func decodeBatch(rec []byte, fn func(name string, minute int64, country string, loggedIn bool) error) error {
	corrupt := func(what string) error {
		return fmt.Errorf("%w: wal record %s", recordio.ErrCorrupt, what)
	}
	if len(rec) == 0 || rec[0] != walRecordVersion {
		return corrupt("version")
	}
	rec = rec[1:]
	count, n := binary.Uvarint(rec)
	if n <= 0 {
		return corrupt("count")
	}
	rec = rec[n:]
	readStr := func() (string, bool) {
		l, n := binary.Uvarint(rec)
		if n <= 0 || uint64(len(rec)-n) < l {
			return "", false
		}
		s := string(rec[n : n+int(l)])
		rec = rec[n+int(l):]
		return s, true
	}
	for i := uint64(0); i < count; i++ {
		name, ok := readStr()
		if !ok {
			return corrupt("name")
		}
		minute, n := binary.Uvarint(rec)
		if n <= 0 {
			return corrupt("minute")
		}
		rec = rec[n:]
		country, ok := readStr()
		if !ok {
			return corrupt("country")
		}
		if len(rec) < 1 {
			return corrupt("login bit")
		}
		loggedIn := rec[0] == 1
		rec = rec[1:]
		if err := fn(name, int64(minute), country, loggedIn); err != nil {
			return err
		}
	}
	return nil
}

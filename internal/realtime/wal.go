package realtime

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"unilog/internal/recordio"
)

// The write-ahead log makes the counters durable without slowing the hot
// path below its memory-only throughput class: each shard's drain
// goroutine appends whole batches (one CRC-framed record per batch, see
// recordio.CRCWriter) to its own segment file before applying them, so
// logging parallelizes with sharding and costs one buffered write per
// batch, not per event. fsync is amortized over Config.FsyncEvery batches.
//
// Record format v2 is dictionary-compressed: each segment carries its own
// name and country dictionaries, built incrementally — the first record
// that references a name embeds its string once, and every later
// observation in the segment refers to it by a small varint ID. Minutes
// are delta-encoded against the record's first observation. Steady state
// is therefore a few bytes per observation instead of the ~36 B the v1
// format spent re-logging the full hierarchical name every time.
// Dictionaries are strictly per-segment, so segments stay independently
// replayable and rotation/pruning needs no cross-file bookkeeping.
//
// The log remains the minimum needed to re-digest its observations on
// replay: names, minutes, countries, login bits. Prefixes, rollup names,
// and shard/stripe routing are all derived from the name, so they are
// recomputed at recovery time against the recovering counter's own
// configuration — a log written by a 4-shard counter replays correctly
// into an 8-shard one. decodeBatch still accepts v1 records, so logs
// written before the dictionary format replay unchanged.
//
// Segments are named wal-<shard>-<seq>.log. A snapshot rotates every
// shard to a fresh segment and then deletes the segments it covers, so
// the set of files on disk is always: the newest snapshot plus the
// segments appended since it was cut (plus, transiently, garbage an
// interrupted snapshot failed to delete, which recovery ignores).

// WAL record format versions. New records are written as v2; v1 records
// (full name logged per observation) are still decoded for replay of
// pre-dictionary logs.
const (
	walRecordV1      = 1
	walRecordVersion = 2
)

// walName formats a segment file name.
func walName(shard int, seq int64) string {
	return fmt.Sprintf("wal-%03d-%010d.log", shard, seq)
}

// parseWALName inverts walName.
func parseWALName(name string) (shard int, seq int64, ok bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, 0, false
	}
	shardStr, seqStr, ok := strings.Cut(rest, "-")
	if !ok {
		return 0, 0, false
	}
	s, err1 := strconv.Atoi(shardStr)
	q, err2 := strconv.ParseInt(seqStr, 10, 64)
	if err1 != nil || err2 != nil || s < 0 || q < 0 {
		return 0, 0, false
	}
	return s, q, true
}

// walWriter appends CRC-framed batch records to one shard's current
// segment. It is owned by the shard's drain goroutine once the counter is
// running; only open/rotate/close bookkeeping happens elsewhere, and only
// while the drains are parked (startup, shutdown, or a snap message).
type walWriter struct {
	dir   string
	shard int
	seq   int64 // current segment sequence number

	f  *os.File
	bw *bufio.Writer
	cw *recordio.CRCWriter

	sinceSync int    // batches appended since the last fsync
	scratch   []byte // batch encoding buffer, reused

	// Per-segment dictionary state: global symbol-table ID -> dense
	// segment-local ID, assigned in first-reference order (the decoder
	// mirrors the assignment, so only the strings travel). Reset on
	// rotate — each segment's dictionary stands alone.
	nameLocal    map[uint32]uint32
	countryLocal map[uint32]uint32
}

// openWAL creates (or truncates) the segment walName(shard, seq) and
// returns a writer positioned at its start. Recovery always starts a
// fresh segment rather than appending after a possibly-torn tail.
func openWAL(dir string, shard int, seq int64) (*walWriter, error) {
	f, err := os.Create(filepath.Join(dir, walName(shard, seq)))
	if err != nil {
		return nil, err
	}
	w := &walWriter{
		dir: dir, shard: shard, seq: seq, f: f,
		nameLocal:    make(map[uint32]uint32),
		countryLocal: make(map[uint32]uint32),
	}
	w.bw = bufio.NewWriterSize(f, 1<<16)
	w.cw = recordio.NewCRCWriter(w.bw)
	return w, nil
}

// errFsync marks an append whose record reached the segment but whose
// fsync failed: the batch will replay after a process kill, only an OS
// crash can lose it. Callers distinguish it from a write failure, which
// means the batch never made the log at all.
var errFsync = errors.New("realtime: wal fsync failed")

// append logs one batch: encode, frame, flush to the OS, and fsync every
// fsyncEvery batches. It returns the framed size and whether this append
// fsynced. tab resolves the country strings a first-seen dictionary entry
// needs. On a write or flush error the dictionary additions are rolled
// back, so a batch that never reached the log cannot leave later records
// referencing entries the decoder will never see; a failed fsync keeps
// them (the record is in the file) and reports errFsync, with the sync
// retried on the very next append rather than a full fsyncEvery later.
func (w *walWriter) append(batch []obs, fsyncEvery int, tab *symtab) (int64, bool, error) {
	var addedNames, addedCountries []uint32
	w.scratch, addedNames, addedCountries = w.encodeBatch(w.scratch[:0], batch, tab)
	rollback := func() {
		for _, id := range addedNames {
			delete(w.nameLocal, id)
		}
		for _, id := range addedCountries {
			delete(w.countryLocal, id)
		}
	}
	before := w.cw.Bytes()
	if err := w.cw.Append(w.scratch); err != nil {
		rollback()
		return 0, false, err
	}
	// Flush the bufio layer every batch: once this returns, a process
	// kill cannot lose the batch, only an OS crash can (until the next
	// fsync).
	if err := w.bw.Flush(); err != nil {
		rollback()
		return 0, false, err
	}
	w.sinceSync++
	if w.sinceSync < fsyncEvery {
		return w.cw.Bytes() - before, false, nil
	}
	t0 := time.Now()
	err := w.f.Sync()
	tmWALFsyncNs.ObserveSince(t0)
	if err != nil {
		// sinceSync stays at the threshold: the next append retries.
		return w.cw.Bytes() - before, false, fmt.Errorf("%w: %v", errFsync, err)
	}
	w.sinceSync = 0
	return w.cw.Bytes() - before, true, nil
}

// rotate durably finishes the current segment and opens the next one,
// returning the new segment's sequence number. Everything appended so far
// lives in segments < the returned seq; the fresh segment starts with an
// empty dictionary.
func (w *walWriter) rotate() (int64, error) {
	if err := w.close(); err != nil {
		return 0, err
	}
	nw, err := openWAL(w.dir, w.shard, w.seq+1)
	if err != nil {
		return 0, err
	}
	*w = *nw
	return w.seq, nil
}

// close flushes, fsyncs, and closes the current segment file.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.bw.Flush()
	if serr := w.f.Sync(); err == nil {
		err = serr
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walAppend is the drain-goroutine side: it logs the batch and folds the
// outcome into the counter's stats. A failed write degrades that batch to
// memory-only rather than stalling ingestion; WALErrors records the loss.
// A failed fsync still counts the batch and its bytes (the record is in
// the log and will replay after a kill) alongside a WALError for the
// weakened durability.
func (c *Counter) walAppend(s *shard, batch []obs) {
	t0 := time.Now()
	n, synced, err := s.wal.append(batch, c.cfg.FsyncEvery, c.tab)
	tmWALAppendNs.ObserveSince(t0)
	if err != nil && !errors.Is(err, errFsync) {
		c.walErrors.Add(1)
		return
	}
	c.walBatches.Add(1)
	c.walBytes.Add(n)
	tmWALBytes.Add(n)
	if err != nil {
		c.walErrors.Add(1)
		return
	}
	if synced {
		c.fsyncs.Add(1)
	}
}

// encodeBatch appends the v2 wire form of a batch to buf:
//
//	version byte (2)
//	uvarint count of first-seen names, then each name (len-prefixed);
//	  segment-local name IDs are implicit, assigned in listed order
//	uvarint count of first-seen countries, then each code (len-prefixed)
//	uvarint observation count
//	uvarint base minute (the first observation's)
//	per observation:
//	  uvarint segment-local name ID
//	  signed varint minute delta from the base
//	  uvarint (segment-local country ID << 1) | logged-in bit
//
// It also returns the global IDs it added to the segment dictionaries so
// a failed append can roll them back.
func (w *walWriter) encodeBatch(buf []byte, batch []obs, tab *symtab) (out []byte, addedNames, addedCountries []uint32) {
	var newNames, newCountries []string
	for i := range batch {
		o := &batch[i]
		if _, ok := w.nameLocal[o.sym.id]; !ok {
			w.nameLocal[o.sym.id] = uint32(len(w.nameLocal))
			addedNames = append(addedNames, o.sym.id)
			newNames = append(newNames, o.sym.full)
		}
		if _, ok := w.countryLocal[o.country]; !ok {
			w.countryLocal[o.country] = uint32(len(w.countryLocal))
			addedCountries = append(addedCountries, o.country)
			newCountries = append(newCountries, tab.countryName(o.country))
		}
	}
	buf = append(buf, walRecordVersion)
	buf = binary.AppendUvarint(buf, uint64(len(newNames)))
	for _, s := range newNames {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(newCountries)))
	for _, s := range newCountries {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(batch)))
	base := int64(0)
	if len(batch) > 0 {
		base = batch[0].minute
	}
	buf = binary.AppendUvarint(buf, uint64(base))
	for i := range batch {
		o := &batch[i]
		buf = binary.AppendUvarint(buf, uint64(w.nameLocal[o.sym.id]))
		buf = binary.AppendVarint(buf, o.minute-base)
		cl := uint64(w.countryLocal[o.country]) << 1
		if o.loggedIn {
			cl |= 1
		}
		buf = binary.AppendUvarint(buf, cl)
	}
	return buf, addedNames, addedCountries
}

// walDecoder accumulates one segment's dictionaries while replaying its
// records in order. Create one per segment; v1 records need no state and
// decode through the same entry point.
type walDecoder struct {
	names     []string
	countries []string
}

// decodeBatch walks one WAL record, invoking fn per logged observation.
// Any structural damage surfaces as recordio.ErrCorrupt so replay treats
// it like a failed checksum.
func (d *walDecoder) decodeBatch(rec []byte, fn func(name string, minute int64, country string, loggedIn bool) error) error {
	if len(rec) == 0 {
		return fmt.Errorf("%w: wal record empty", recordio.ErrCorrupt)
	}
	switch rec[0] {
	case walRecordV1:
		return decodeBatchV1(rec[1:], fn)
	case walRecordVersion:
		return d.decodeBatchV2(rec[1:], fn)
	default:
		return fmt.Errorf("%w: wal record version %d", recordio.ErrCorrupt, rec[0])
	}
}

// decodeBatchV2 parses one dictionary-compressed record, extending the
// segment dictionaries with its first-seen entries. Bounds checking rides
// on the shared recordio.Cursor; the wrap keeps errors in the familiar
// "wal record <field>" shape.
func (d *walDecoder) decodeBatchV2(rec []byte, fn func(name string, minute int64, country string, loggedIn bool) error) error {
	c := recordio.NewCursor(rec)
	corrupt := func(what string) error {
		return fmt.Errorf("%w: wal record %s", recordio.ErrCorrupt, what)
	}
	readStrs := func(into *[]string, what string) error {
		count := c.Count(what + " count")
		for i := 0; i < count && c.Ok(); i++ {
			*into = append(*into, c.String(what))
		}
		return c.Err()
	}
	if err := readStrs(&d.names, "dictionary name"); err != nil {
		return err
	}
	if err := readStrs(&d.countries, "dictionary country"); err != nil {
		return err
	}
	count := c.Uvarint("count")
	base := c.Uvarint("base minute")
	if !c.Ok() {
		return fmt.Errorf("wal record: %w", c.Err())
	}
	for i := uint64(0); i < count; i++ {
		nameID := c.Uvarint("name id")
		delta := c.Varint("minute delta")
		cl := c.Uvarint("country id")
		if !c.Ok() {
			return fmt.Errorf("wal record: %w", c.Err())
		}
		if nameID >= uint64(len(d.names)) {
			return corrupt("name id")
		}
		if cl>>1 >= uint64(len(d.countries)) {
			return corrupt("country id")
		}
		if err := fn(d.names[nameID], int64(base)+delta, d.countries[cl>>1], cl&1 == 1); err != nil {
			return err
		}
	}
	return nil
}

// decodeBatchV1 parses the pre-dictionary record body (full name, minute,
// country, login bit per observation) — the compatibility path that keeps
// logs written before the v2 format replayable.
func decodeBatchV1(rec []byte, fn func(name string, minute int64, country string, loggedIn bool) error) error {
	c := recordio.NewCursor(rec)
	count := c.Uvarint("count")
	for i := uint64(0); i < count; i++ {
		name := c.String("name")
		minute := c.Uvarint("minute")
		country := c.String("country")
		loggedIn := c.Bool("login bit")
		if !c.Ok() {
			break
		}
		if err := fn(name, int64(minute), country, loggedIn); err != nil {
			return err
		}
	}
	if err := c.Err(); err != nil {
		return fmt.Errorf("wal record: %w", err)
	}
	return nil
}

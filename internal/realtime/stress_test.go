package realtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"unilog/internal/events"
)

// TestSustainedIngestWithConcurrentQueries is the acceptance stress run:
// one million events fanned across four shards by four producers while
// query goroutines read concurrently, then every windowed sum checked
// exactly against a reference computed during generation.
func TestSustainedIngestWithConcurrentQueries(t *testing.T) {
	total := 1_000_000
	if testing.Short() {
		total = 200_000
	}
	const (
		producers = 4
		minutes   = 1440 // one day of one-minute buckets
	)
	clients := []string{"web", "iphone", "android", "ipad"}
	names := make([]*events.ClientEvent, 0, 64)
	for _, client := range clients {
		for _, page := range []string{"home", "search", "profile", "discover"} {
			for _, section := range []string{"timeline", "mentions"} {
				for _, action := range []string{"impression", "click"} {
					names = append(names, ev(
						fmt.Sprintf("%s:%s:%s:stream:tweet:%s", client, page, section, action),
						t0, 1, "us"))
				}
			}
		}
	}
	day := t0.UTC().Truncate(24 * time.Hour)

	c := newCounter(t, Config{Shards: 4, Stripes: 8})
	if c.Shards() < 4 {
		t.Fatalf("Shards = %d, want >= 4", c.Shards())
	}

	// Producers ingest disjoint index ranges, each recording a local
	// reference of per-client, per-minute counts as it goes.
	type ref struct{ perClientMinute [4][minutes]int64 }
	refs := make([]*ref, producers)
	var wg sync.WaitGroup
	start := time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		refs[p] = &ref{}
		go func(p int) {
			defer wg.Done()
			b := c.NewBatcher()
			var e events.ClientEvent
			for i := p * total / producers; i < (p+1)*total/producers; i++ {
				tmpl := names[i%len(names)]
				minuteIdx := i % minutes
				e = *tmpl
				e.Timestamp = day.Add(time.Duration(minuteIdx) * time.Minute).UnixMilli()
				e.UserID = int64(i % 7) // mix of logged-in and logged-out
				b.Add(&e)
				refs[p].perClientMinute[(i%len(names))/16][minuteIdx]++
			}
			b.Flush()
		}(p)
	}

	// Concurrent readers: windowed sums over a growing store must be
	// non-decreasing (buckets only accumulate) and never exceed the final
	// planted total.
	done := make(chan struct{})
	var qerr atomic.Value
	var queries atomic.Int64
	for q := 0; q < 2; q++ {
		go func(client string) {
			var last int64
			for {
				select {
				case <-done:
					return
				default:
				}
				got := c.PathSum(client, day, day.Add(24*time.Hour))
				queries.Add(1)
				if got < last {
					qerr.Store(fmt.Errorf("concurrent PathSum(%s) went backwards: %d -> %d", client, last, got))
					return
				}
				last = got
				c.TopK("", 4, day, day.Add(24*time.Hour))
			}
		}(clients[q])
	}

	wg.Wait()
	c.Sync()
	elapsed := time.Since(start)
	close(done)
	if err, ok := qerr.Load().(error); ok {
		t.Fatal(err)
	}

	// Merge references and verify exact windowed sums.
	var want [4][minutes]int64
	for _, r := range refs {
		for ci := range want {
			for m := range want[ci] {
				want[ci][m] += r.perClientMinute[ci][m]
			}
		}
	}
	for ci, client := range clients {
		var clientTotal int64
		for _, n := range want[ci] {
			clientTotal += n
		}
		if got := c.PathSum(client, day, day.Add(24*time.Hour)); got != clientTotal {
			t.Errorf("PathSum(%s, day) = %d, want %d", client, got, clientTotal)
		}
		// Sub-windows: an hour, a minute, and a half-open slice.
		for _, w := range []struct{ a, b int }{{0, 60}, {617, 618}, {100, 1340}} {
			var sub int64
			for m := w.a; m < w.b; m++ {
				sub += want[ci][m]
			}
			got := c.PathSum(client,
				day.Add(time.Duration(w.a)*time.Minute),
				day.Add(time.Duration(w.b)*time.Minute))
			if got != sub {
				t.Errorf("PathSum(%s, m%d..m%d) = %d, want %d", client, w.a, w.b, got, sub)
			}
		}
	}
	st := c.Stats()
	if st.Observed != int64(total) {
		t.Errorf("Observed = %d, want %d", st.Observed, total)
	}
	if st.DroppedOld != 0 || st.Invalid != 0 {
		t.Errorf("unexpected drops: %+v", st)
	}
	t.Logf("ingested %d events across %d shards in %v (%.0f events/s), %d concurrent queries (backpressure waits: %d)",
		total, c.Shards(), elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds(), queries.Load(), st.QueueFull)
}

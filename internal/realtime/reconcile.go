package realtime

import (
	"fmt"
	"sort"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
)

// Reconcile is the lambda-architecture check: it computes one sealed day
// both ways — the batch path (analytics.Rollups over the warehouse) and
// the streaming path (a replay of the same warehouse day through a fresh
// Counter) — and diffs the two rollup tables. Exact agreement proves the
// realtime subsystem computes the same answers the daily jobs publish,
// which is what lets BirdBrain serve "today so far" from memory and
// sealed days from the warehouse without the numbers jumping at midnight.
// Because the streaming side counts in symbol-table ID space and resolves
// strings only in RollupSnapshot, this diff is also the end-to-end proof
// that interning changed the engine's representation, not its answers.

// Diff is one disagreeing rollup row.
type Diff struct {
	Key           analytics.RollupKey
	Batch, Stream int64
}

// Report summarizes one reconciliation run.
type Report struct {
	Day    time.Time
	Events int64 // events replayed through the streaming path
	// BatchRows and StreamRows are the sizes of the two rollup tables.
	BatchRows, StreamRows int
	// Missing rows exist only in the batch table, Extra rows only in the
	// streaming table, Mismatched in both with different counts. Each
	// slice is capped at MaxDiffs with the overflow in the counts.
	Missing, Extra, Mismatched  []Diff
	MissingN, ExtraN, MismatchN int
}

// MaxDiffs caps the example rows kept per diff class in a Report.
const MaxDiffs = 10

// OK reports whether the two paths agreed exactly.
func (r *Report) OK() bool {
	return r.MissingN == 0 && r.ExtraN == 0 && r.MismatchN == 0
}

// String renders a one-line verdict.
func (r *Report) String() string {
	if r.OK() {
		return fmt.Sprintf("reconcile %s: OK — %d events, %d rollup rows identical on both paths",
			r.Day.Format("2006-01-02"), r.Events, r.BatchRows)
	}
	return fmt.Sprintf("reconcile %s: DIVERGED — %d missing, %d extra, %d mismatched of %d batch rows",
		r.Day.Format("2006-01-02"), r.MissingN, r.ExtraN, r.MismatchN, r.BatchRows)
}

// Reconcile replays the sealed day from the warehouse through a fresh
// counter configured by cfg (retention is widened to hold a full day) and
// compares against the batch rollup job.
func Reconcile(fs *hdfs.FS, day time.Time, cfg Config) (*Report, error) {
	day = day.UTC().Truncate(24 * time.Hour)

	j := dataflow.NewJob("reconcile-batch", fs)
	batch, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, err
	}

	if cfg.Retention < 25*time.Hour {
		cfg.Retention = 25 * time.Hour
	}
	c := New(cfg)
	defer c.Close()
	b := c.NewBatcher()
	var n int64
	err = warehouse.ScanDay(fs, events.Category, day, func(e *events.ClientEvent) error {
		b.Add(e)
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	b.Flush()
	c.Sync()
	stream := c.RollupSnapshot(day, day.Add(24*time.Hour))

	r := &Report{Day: day, Events: n}
	r.diff(batch, stream)
	return r, nil
}

// ReconcileWith diffs the batch rollup job against the rollup rows an
// existing counter holds for the day — the check a recovered counter must
// pass: after a kill and an Open, its day must still agree exactly with
// the warehouse. Events reports the counter's observed total, not a
// replay count.
func ReconcileWith(fs *hdfs.FS, day time.Time, c *Counter) (*Report, error) {
	day = day.UTC().Truncate(24 * time.Hour)
	j := dataflow.NewJob("reconcile-batch", fs)
	batch, err := analytics.Rollups(j, day)
	if err != nil {
		return nil, err
	}
	c.Sync()
	stream := c.RollupSnapshot(day, day.Add(24*time.Hour))
	r := &Report{Day: day, Events: c.Stats().Observed}
	r.diff(batch, stream)
	return r, nil
}

// DiffRollups diffs an arbitrary batch/stream rollup-table pair into a
// Report — the reconcile primitive for callers that assemble the
// streaming table themselves, like a cluster scatter-gather that merges
// one RollupSnapshot per partition before comparing against the batch
// job. Events is left zero; the caller knows its own ingest count.
func DiffRollups(day time.Time, batch, stream map[analytics.RollupKey]int64) *Report {
	r := &Report{Day: day.UTC().Truncate(24 * time.Hour)}
	r.diff(batch, stream)
	return r
}

// diff fills the report with the disagreement between the batch and
// streaming rollup tables.
func (r *Report) diff(batch, stream map[analytics.RollupKey]int64) {
	r.BatchRows, r.StreamRows = len(batch), len(stream)
	for k, want := range batch {
		got, ok := stream[k]
		switch {
		case !ok:
			r.MissingN++
			if len(r.Missing) < MaxDiffs {
				r.Missing = append(r.Missing, Diff{Key: k, Batch: want})
			}
		case got != want:
			r.MismatchN++
			if len(r.Mismatched) < MaxDiffs {
				r.Mismatched = append(r.Mismatched, Diff{Key: k, Batch: want, Stream: got})
			}
		}
	}
	for k, got := range stream {
		if _, ok := batch[k]; !ok {
			r.ExtraN++
			if len(r.Extra) < MaxDiffs {
				r.Extra = append(r.Extra, Diff{Key: k, Stream: got})
			}
		}
	}
	for _, ds := range [][]Diff{r.Missing, r.Extra, r.Mismatched} {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].Key.Level != ds[j].Key.Level {
				return ds[i].Key.Level < ds[j].Key.Level
			}
			return ds[i].Key.Name < ds[j].Key.Name
		})
	}
}

package realtime

import (
	"testing"
	"time"

	"unilog/internal/analytics"
	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/scribe"
)

var t0 = time.Date(2012, 8, 21, 14, 0, 0, 0, time.UTC)

func ev(name string, at time.Time, user int64, country string) *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    user,
		SessionID: "sess",
		IP:        geo.IPFor(country, user),
		Timestamp: at.UnixMilli(),
	}
}

func newCounter(t *testing.T, cfg Config) *Counter {
	t.Helper()
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

func TestHierarchicalCounting(t *testing.T) {
	c := newCounter(t, Config{Shards: 4})
	b := c.NewBatcher()
	for i := 0; i < 10; i++ {
		b.Add(ev("web:home:mentions:stream:avatar:profile_click", t0, 1, "us"))
	}
	for i := 0; i < 7; i++ {
		b.Add(ev("web:home:timeline:stream:tweet:impression", t0.Add(time.Minute), 0, "jp"))
	}
	for i := 0; i < 3; i++ {
		b.Add(ev("iphone:home:timeline:stream:tweet:impression", t0, 2, "us"))
	}
	b.Flush()
	c.Sync()

	day := t0.Truncate(24 * time.Hour)
	end := day.Add(24 * time.Hour)
	// Every prefix of a name counts the events below it.
	for path, want := range map[string]int64{
		"web":                             17,
		"web:home":                        17,
		"web:home:mentions":               10,
		"web:home:mentions:stream":        10,
		"web:home:mentions:stream:avatar": 10,
		"web:home:mentions:stream:avatar:profile_click": 10,
		"web:home:timeline:stream:tweet:impression":     7,
		"iphone": 3,
		"iphone:home:timeline:stream:tweet:impression": 3,
		"android": 0,
		"web:home:timeline:stream:avatar:profile_click": 0,
	} {
		if got := c.PathSum(path, day, end); got != want {
			t.Errorf("PathSum(%q) = %d, want %d", path, got, want)
		}
	}
	if got := c.Stats().Observed; got != 20 {
		t.Errorf("Observed = %d, want 20", got)
	}
}

func TestWindowing(t *testing.T) {
	c := newCounter(t, Config{Shards: 2})
	b := c.NewBatcher()
	// 5 events at t0, 3 at t0+1m, 2 at t0+5m.
	for i := 0; i < 5; i++ {
		b.Add(ev("web:home:timeline:stream:tweet:impression", t0.Add(10*time.Second), 1, "us"))
	}
	for i := 0; i < 3; i++ {
		b.Add(ev("web:home:timeline:stream:tweet:impression", t0.Add(time.Minute), 1, "us"))
	}
	for i := 0; i < 2; i++ {
		b.Add(ev("web:home:timeline:stream:tweet:impression", t0.Add(5*time.Minute+30*time.Second), 1, "us"))
	}
	b.Flush()
	c.Sync()

	cases := []struct {
		from, to time.Time
		want     int64
	}{
		{t0, t0.Add(time.Minute), 5},     // first minute only
		{t0, t0.Add(2 * time.Minute), 8}, // first two minutes
		{t0.Add(time.Minute), t0.Add(2 * time.Minute), 3},
		{t0, t0.Add(6 * time.Minute), 10}, // whole window
		{t0.Add(2 * time.Minute), t0.Add(5 * time.Minute), 0},
		{t0, t0.Add(5*time.Minute + 30*time.Second), 10}, // mid-minute end widens to the bucket
	}
	for _, tc := range cases {
		if got := c.PathSum("web", tc.from, tc.to); got != tc.want {
			t.Errorf("PathSum(web, %v, %v) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}

	series := c.Series("web", t0, t0.Add(6*time.Minute))
	want := []int64{5, 3, 0, 0, 0, 2}
	if len(series) != len(want) {
		t.Fatalf("Series length = %d, want %d", len(series), len(want))
	}
	for i := range want {
		if series[i] != want[i] {
			t.Errorf("Series[%d] = %d, want %d", i, series[i], want[i])
		}
	}
}

func TestTopK(t *testing.T) {
	c := newCounter(t, Config{Shards: 4})
	b := c.NewBatcher()
	add := func(name string, n int) {
		for i := 0; i < n; i++ {
			b.Add(ev(name, t0, 1, "us"))
		}
	}
	add("web:home:timeline:stream:tweet:impression", 50)
	add("web:home:mentions:stream:tweet:impression", 30)
	add("web:search:results:stream:tweet:impression", 20)
	add("iphone:home:timeline:stream:tweet:impression", 40)
	add("android:home:timeline:stream:tweet:impression", 40)
	b.Flush()
	c.Sync()

	from, to := t0, t0.Add(time.Minute)
	top := c.TopK("", 2, from, to)
	if len(top) != 2 || top[0].Path != "web" || top[0].Count != 100 {
		t.Fatalf("TopK(\"\") = %v", top)
	}
	// android and iphone tie at 40; the tie breaks alphabetically.
	if top[1].Path != "android" || top[1].Count != 40 {
		t.Errorf("TopK(\"\")[1] = %v, want android/40", top[1])
	}

	pages := c.TopK("web", 10, from, to)
	if len(pages) != 2 {
		t.Fatalf("TopK(web) = %v", pages)
	}
	if pages[0].Path != "web:home" || pages[0].Count != 80 ||
		pages[1].Path != "web:search" || pages[1].Count != 20 {
		t.Errorf("TopK(web) = %v", pages)
	}
	if got := c.TopK("ipad", 3, from, to); len(got) != 0 {
		t.Errorf("TopK(ipad) = %v, want empty", got)
	}
}

func TestRollupRows(t *testing.T) {
	c := newCounter(t, Config{Shards: 4})
	b := c.NewBatcher()
	b.Add(ev("web:home:mentions:stream:avatar:profile_click", t0, 7, "us"))
	b.Add(ev("web:home:mentions:stream:avatar:profile_click", t0, 0, "jp"))
	b.Flush()
	c.Sync()

	from, to := t0, t0.Add(time.Minute)
	snap := c.RollupSnapshot(from, to)
	// 2 events x 5 levels, split across two (country, logged-in) cells.
	if len(snap) != 2*events.NumRollupLevels {
		t.Fatalf("snapshot has %d rows, want %d", len(snap), 2*events.NumRollupLevels)
	}
	k := analytics.RollupKey{
		Level:    2,
		Name:     "web:home:mentions:*:*:profile_click",
		Country:  "us",
		LoggedIn: true,
	}
	if snap[k] != 1 {
		t.Errorf("snapshot[%+v] = %d, want 1", k, snap[k])
	}
	if got := c.RollupTotal(4, "web:*:*:*:*:profile_click", from, to); got != 2 {
		t.Errorf("RollupTotal = %d, want 2", got)
	}
	if got := analytics.RollupTotal(snap, 4, "web:*:*:*:*:profile_click"); got != 2 {
		t.Errorf("analytics.RollupTotal over snapshot = %d, want 2", got)
	}
}

func TestTapBatchDecodesClientEvents(t *testing.T) {
	c := newCounter(t, Config{Shards: 2})
	e := ev("web:home:timeline:stream:tweet:impression", t0, 1, "us")
	c.TapBatch([]scribe.Entry{
		{Category: events.Category, Message: e.Marshal()},
		{Category: "other_category", Message: []byte("not a client event")},
		{Category: events.Category, Message: []byte("corrupt")},
	})
	c.Sync()
	st := c.Stats()
	if st.TapEntries != 2 {
		t.Errorf("TapEntries = %d, want 2", st.TapEntries)
	}
	if st.DecodeErrors != 1 {
		t.Errorf("DecodeErrors = %d, want 1", st.DecodeErrors)
	}
	if st.Observed != 1 {
		t.Errorf("Observed = %d, want 1", st.Observed)
	}
	if got := c.PathSum("web", t0, t0.Add(time.Minute)); got != 1 {
		t.Errorf("PathSum(web) = %d, want 1", got)
	}
}

func TestRetentionDropsAndEvicts(t *testing.T) {
	c := newCounter(t, Config{Shards: 1, Stripes: 1, Retention: 5 * time.Minute})
	one := func(at time.Time) {
		c.Ingest(ev("web:home:timeline:stream:tweet:impression", at, 1, "us"))
	}
	one(t0)
	c.Sync()
	// t0+10m lands on a slot five minutes ahead of t0+5m's; the wrap evicts
	// the t0 bucket.
	one(t0.Add(10 * time.Minute))
	c.Sync()
	if got := c.PathSum("web", t0, t0.Add(time.Minute)); got != 0 {
		t.Errorf("evicted bucket still readable: PathSum = %d", got)
	}
	if got := c.Stats().Evicted; got != 1 {
		t.Errorf("Evicted = %d, want 1", got)
	}
	// An observation older than the newest retained minute's window drops.
	one(t0)
	c.Sync()
	if got := c.Stats().DroppedOld; got != 1 {
		t.Errorf("DroppedOld = %d, want 1", got)
	}
	// A straggler behind the horizon drops even when its ring slot is
	// free — old windows read uniformly empty, never partially evicted.
	one(t0.Add(4 * time.Minute))
	c.Sync()
	if got := c.Stats().DroppedOld; got != 2 {
		t.Errorf("DroppedOld = %d, want 2", got)
	}
	if got := c.PathSum("web", t0.Add(4*time.Minute), t0.Add(5*time.Minute)); got != 0 {
		t.Errorf("behind-horizon minute = %d, want 0", got)
	}
	if got := c.PathSum("web", t0.Add(10*time.Minute), t0.Add(11*time.Minute)); got != 1 {
		t.Errorf("current bucket = %d, want 1", got)
	}
}

func TestInvalidNameSkipped(t *testing.T) {
	c := newCounter(t, Config{Shards: 1})
	bad := &events.ClientEvent{Timestamp: t0.UnixMilli(), IP: "10.0.0.1"} // empty name
	c.Ingest(bad)
	c.Sync()
	st := c.Stats()
	if st.Invalid != 1 || st.Observed != 0 {
		t.Errorf("stats = %+v, want Invalid 1, Observed 0", st)
	}
}

func TestCloseIsIdempotentAndStopsIngest(t *testing.T) {
	c := New(Config{Shards: 2})
	c.Ingest(ev("web:home:timeline:stream:tweet:impression", t0, 1, "us"))
	c.Sync()
	c.Close()
	c.Close()
	// Post-close ingestion is a no-op, and queries still serve.
	c.Ingest(ev("web:home:timeline:stream:tweet:impression", t0, 1, "us"))
	c.Sync()
	if got := c.PathSum("web", t0, t0.Add(time.Minute)); got != 1 {
		t.Errorf("PathSum after Close = %d, want 1", got)
	}
}

// TestBatcherSteadyStateAllocationFree pins the hot-path contract the
// symbol table and batch pool buy: once the names and countries in play
// are interned and a recycled batch buffer is in hand, Add performs no
// allocations at all — digest is a read-locked lookup, the obs appends
// into pooled capacity.
func TestBatcherSteadyStateAllocationFree(t *testing.T) {
	c := newCounter(t, Config{Shards: 1, Stripes: 1, MaxBatch: 1 << 16})
	b := c.NewBatcher()
	es := []*events.ClientEvent{
		ev("web:home:mentions:stream:avatar:profile_click", t0, 1, "us"),
		ev("web:home:timeline:stream:tweet:impression", t0.Add(time.Minute), 0, "jp"),
		ev("iphone:home:timeline:stream:tweet:impression", t0, 2, "uk"),
		ev("android:profile:header:card:follow:click", t0.Add(2*time.Minute), 3, "br"),
	}
	// Warm up: intern every name and country, then hand the batch to the
	// drain and take a recycled buffer back out of the pool.
	for i := 0; i < 64; i++ {
		b.Add(es[i%len(es)])
	}
	b.Flush()
	c.Sync()
	b.Add(es[0]) // pulls the buffer before the measured loop

	i := 0
	avg := testing.AllocsPerRun(2000, func() {
		b.Add(es[i%len(es)])
		i++
	})
	if avg > 0.01 {
		t.Fatalf("steady-state Add = %.4f allocs/op, want 0", avg)
	}
	b.Flush()
	c.Sync()
	if got := c.Stats().Observed; got != 64+1+2001 {
		t.Fatalf("Observed = %d, want %d", got, 64+1+2001)
	}
}

package align

import (
	"testing"
	"testing/quick"
)

func TestLocalScoreBasics(t *testing.T) {
	s := DefaultScoring
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 6},       // perfect match: 3 * +2
		{"abc", "xbz", 2},       // single shared symbol
		{"abc", "xyz", 0},       // nothing shared
		{"", "abc", 0},          // empty side
		{"abcdef", "cde", 6},    // substring: 3 matches
		{"abcdef", "abXdef", 9}, // mismatch bridged: 5 matches (+10) - 1 mismatch
	}
	for _, c := range cases {
		if got := LocalScore(c.a, c.b, s); got != c.want {
			t.Errorf("LocalScore(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLocalScoreSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return LocalScore(a, b, DefaultScoring) == LocalScore(b, a, DefaultScoring)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	f := func(a string) bool {
		if len(a) == 0 {
			return Similarity(a, a, DefaultScoring) == 0
		}
		sim := Similarity(a, a, DefaultScoring)
		return sim > 0.999 && sim < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	f := func(a, b string) bool {
		sim := Similarity(a, b, DefaultScoring)
		return sim >= 0 && sim <= 1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTracebackConsistent(t *testing.T) {
	a, b := "openimpressclickfollow", "openimpressXclickfollow"
	al := Local(a, b, DefaultScoring)
	if al.Score != LocalScore(a, b, DefaultScoring) {
		t.Fatalf("traceback score %d != plain score %d", al.Score, LocalScore(a, b, DefaultScoring))
	}
	if len(al.PairsA) != len(al.PairsB) || len(al.PairsA) == 0 {
		t.Fatalf("pairs = %d/%d", len(al.PairsA), len(al.PairsB))
	}
	// Recompute the score from the traceback.
	ra, rb := []rune(a), []rune(b)
	score := 0
	for k := range al.PairsA {
		ia, ib := al.PairsA[k], al.PairsB[k]
		switch {
		case ia >= 0 && ib >= 0 && ra[ia] == rb[ib]:
			score += DefaultScoring.Match
		case ia >= 0 && ib >= 0:
			score += DefaultScoring.Mismatch
		default:
			score += DefaultScoring.Gap
		}
	}
	if score != al.Score {
		t.Fatalf("traceback recomputes to %d, want %d", score, al.Score)
	}
	// Indices are strictly increasing on both sides (ignoring gaps).
	last := -1
	for _, ia := range al.PairsA {
		if ia >= 0 {
			if ia <= last {
				t.Fatal("PairsA not increasing")
			}
			last = ia
		}
	}
}

func TestQueryByExample(t *testing.T) {
	// The query session browses then follows; candidate 0 is nearly
	// identical, candidate 1 unrelated, candidate 2 shares a prefix.
	query := "OIICF" // open, impress, impress, click, follow
	candidates := []string{
		"OIICFX",
		"ZZZZZZZ",
		"OIIQQQ",
	}
	got := QueryByExample(query, candidates, DefaultScoring, 10)
	if len(got) != 2 {
		t.Fatalf("results = %+v (unrelated candidate must be filtered)", got)
	}
	if got[0].Index != 0 || got[1].Index != 2 {
		t.Fatalf("ranking = %+v", got)
	}
	if got[0].Similarity <= got[1].Similarity {
		t.Fatalf("similarities not ordered: %+v", got)
	}
	// k truncates.
	if top := QueryByExample(query, candidates, DefaultScoring, 1); len(top) != 1 || top[0].Index != 0 {
		t.Fatalf("top-1 = %+v", top)
	}
}

func TestGapsPreferredOverMismatchRun(t *testing.T) {
	// "abcdef" vs "abcXXXdef": local alignment should bridge with gaps and
	// keep all 6 matches (score 12 - 3 gaps = 9) rather than stopping at 3.
	got := LocalScore("abcdef", "abcXXXdef", DefaultScoring)
	if got != 9 {
		t.Fatalf("score = %d, want 9", got)
	}
}

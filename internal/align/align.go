// Package align implements sequence alignment over session sequences,
// the §6 "ongoing work" item: "we can take inspiration from biological
// sequence alignment to answer questions like: 'What users exhibit
// similar behavioral patterns?' This type of 'query-by-example' mechanism
// would help in understanding what makes Twitter users engaged."
//
// Because session sequences are strings over a finite alphabet, the
// classic dynamic programs apply directly: Smith-Waterman local alignment
// scores how strongly two sessions share behavioral subpatterns, and a
// normalized similarity in [0, 1] makes scores comparable across session
// lengths. QueryByExample ranks a corpus of sessions against an exemplar.
package align

import (
	"sort"
)

// Scoring parametrizes the alignment dynamic program.
type Scoring struct {
	Match    int // reward for identical events (> 0)
	Mismatch int // penalty for substituted events (< 0)
	Gap      int // penalty for an insertion/deletion (< 0)
}

// DefaultScoring is a standard +2/-1/-1 scheme.
var DefaultScoring = Scoring{Match: 2, Mismatch: -1, Gap: -1}

// LocalScore computes the Smith-Waterman local alignment score of two
// sequences: the best-scoring pair of substrings under the scoring scheme.
// Zero means no similar subpattern at all.
func LocalScore(a, b string, s Scoring) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	// One row of the DP table suffices for the score.
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := s.Mismatch
			if ra[i-1] == rb[j-1] {
				sub = s.Match
			}
			v := prev[j-1] + sub
			if d := prev[j] + s.Gap; d > v {
				v = d
			}
			if d := cur[j-1] + s.Gap; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Alignment is the traceback of a local alignment: aligned rune pairs,
// with -1 marking a gap on that side.
type Alignment struct {
	Score int
	// PairsA[i] and PairsB[i] are indices into the two rune sequences, or
	// -1 for a gap.
	PairsA []int
	PairsB []int
}

// Local computes the Smith-Waterman alignment with full traceback.
func Local(a, b string, s Scoring) Alignment {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	if n == 0 || m == 0 {
		return Alignment{}
	}
	h := make([][]int, n+1)
	for i := range h {
		h[i] = make([]int, m+1)
	}
	best, bi, bj := 0, 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			sub := s.Mismatch
			if ra[i-1] == rb[j-1] {
				sub = s.Match
			}
			v := h[i-1][j-1] + sub
			if d := h[i-1][j] + s.Gap; d > v {
				v = d
			}
			if d := h[i][j-1] + s.Gap; d > v {
				v = d
			}
			if v < 0 {
				v = 0
			}
			h[i][j] = v
			if v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	al := Alignment{Score: best}
	// Traceback from the best cell to the first zero.
	i, j := bi, bj
	var pa, pb []int
	for i > 0 && j > 0 && h[i][j] > 0 {
		sub := s.Mismatch
		if ra[i-1] == rb[j-1] {
			sub = s.Match
		}
		switch {
		case h[i][j] == h[i-1][j-1]+sub:
			pa = append(pa, i-1)
			pb = append(pb, j-1)
			i, j = i-1, j-1
		case h[i][j] == h[i-1][j]+s.Gap:
			pa = append(pa, i-1)
			pb = append(pb, -1)
			i--
		default:
			pa = append(pa, -1)
			pb = append(pb, j-1)
			j--
		}
	}
	// Reverse into forward order.
	for k, l := 0, len(pa)-1; k < l; k, l = k+1, l-1 {
		pa[k], pa[l] = pa[l], pa[k]
		pb[k], pb[l] = pb[l], pb[k]
	}
	al.PairsA, al.PairsB = pa, pb
	return al
}

// Similarity normalizes LocalScore into [0, 1]: 1 means one sequence is a
// perfect subsequence match of the other under the scheme's match reward.
func Similarity(a, b string, s Scoring) float64 {
	la, lb := runeLen(a), runeLen(b)
	min := la
	if lb < min {
		min = lb
	}
	if min == 0 {
		return 0
	}
	return float64(LocalScore(a, b, s)) / float64(min*s.Match)
}

func runeLen(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}

// Scored is one ranked result of QueryByExample.
type Scored struct {
	// Index into the candidates slice.
	Index int
	Score int
	// Similarity is the length-normalized score in [0, 1].
	Similarity float64
}

// QueryByExample ranks candidate sessions by local-alignment similarity to
// the query session and returns the top k (excluding exact index matches
// is the caller's concern).
func QueryByExample(query string, candidates []string, s Scoring, k int) []Scored {
	out := make([]Scored, 0, len(candidates))
	for i, c := range candidates {
		sc := LocalScore(query, c, s)
		if sc <= 0 {
			continue
		}
		out = append(out, Scored{Index: i, Score: sc, Similarity: Similarity(query, c, s)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

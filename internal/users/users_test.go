package users

import (
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/workload"
)

func TestWriteAndLoad(t *testing.T) {
	day := time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)
	cfg := workload.DefaultConfig(day)
	cfg.Users = 50
	_, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := Write(fs, truth); err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("users", fs)
	ds, err := j.Load(Dir, Format())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ds.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(truth.UserCountry) {
		t.Fatalf("rows = %d, want %d", len(rows), len(truth.UserCountry))
	}
	uidIdx := ds.Schema().MustIndex("user_id")
	ctryIdx := ds.Schema().MustIndex("country")
	clientIdx := ds.Schema().MustIndex("primary_client")
	valid := map[string]bool{}
	for _, c := range geo.Countries {
		valid[c] = true
	}
	for _, tp := range rows {
		uid := tp[uidIdx].(int64)
		if truth.UserCountry[uid] != tp[ctryIdx].(string) {
			t.Fatalf("user %d country = %v, want %v", uid, tp[ctryIdx], truth.UserCountry[uid])
		}
		if truth.UserClient[uid] != tp[clientIdx].(string) {
			t.Fatalf("user %d client = %v", uid, tp[clientIdx])
		}
		if !valid[tp[ctryIdx].(string)] {
			t.Fatalf("unknown country %v", tp[ctryIdx])
		}
	}
	if err := Descriptor.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Package users materializes the users dimension table from workload
// ground truth — the table the paper's data scientists join against for
// ad-hoc segment queries ("a join with the users table followed by
// selection with the appropriate criteria", §5.2).
package users

import (
	"sort"

	"unilog/internal/dataflow"
	"unilog/internal/elephantbird"
	"unilog/internal/hdfs"
	"unilog/internal/recordio"
	"unilog/internal/workload"
)

// Dir is the warehouse location of the users dimension table.
const Dir = "/tables/users"

// Descriptor is the Elephant Bird schema of the users table the paper
// describes data scientists joining against ("a join with the users table
// followed by selection with the appropriate criteria", §5.2).
var Descriptor = &elephantbird.Descriptor{
	Name: "users",
	Fields: []elephantbird.Field{
		{Name: "user_id", Kind: elephantbird.KindI64, ID: 1},
		{Name: "country", Kind: elephantbird.KindString, ID: 2},
		{Name: "primary_client", Kind: elephantbird.KindString, ID: 3},
	},
}

// Write materializes the users dimension table from the generator's
// ground truth, Thrift-compact-encoded via Elephant Bird.
func Write(fs *hdfs.FS, truth *workload.Truth) error {
	ids := make([]int64, 0, len(truth.UserCountry))
	for id := range truth.UserCountry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := &usersBuf{}
	w := recordio.NewGzipWriter(buf)
	for _, id := range ids {
		rec, err := Descriptor.Encode(
			dataflow.Tuple{id, truth.UserCountry[id], truth.UserClient[id]},
			elephantbird.ThriftCompact,
		)
		if err != nil {
			return err
		}
		if err := w.Append(rec); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return fs.WriteFile(Dir+"/part-00000.gz", buf.data)
}

// Format is the generated record reader for the users table.
func Format() elephantbird.Format {
	return elephantbird.Format{Desc: Descriptor, Enc: elephantbird.ThriftCompact}
}

type usersBuf struct{ data []byte }

func (b *usersBuf) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

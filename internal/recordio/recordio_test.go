package recordio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	recs := [][]byte{[]byte("one"), {}, []byte("three"), bytes.Repeat([]byte("x"), 1000)}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("record %d = %q, %v", i, got, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewGzipWriter(&buf)
	for i := 0; i < 100; i++ {
		if err := w.Append([]byte("the same compressible record")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= 100*len("the same compressible record") {
		t.Fatalf("gzip did not compress: %d bytes", buf.Len())
	}
	n := 0
	err := ScanGzipFile(buf.Bytes(), func(rec []byte) error {
		if string(rec) != "the same compressible record" {
			t.Fatalf("rec = %q", rec)
		}
		n++
		return nil
	})
	if err != nil || n != 100 {
		t.Fatalf("scanned %d records, %v", n, err)
	}
}

func TestCorruptLength(t *testing.T) {
	// A huge declared length must error, not allocate.
	data := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Append([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestForEachStopsOnError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	n := 0
	err := NewReader(&buf).ForEach(func(rec []byte) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Fatalf("n = %d, err = %v", n, err)
	}
}

func TestBadGzipHeader(t *testing.T) {
	if err := ScanGzipFile([]byte("not gzip at all"), func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestRoundTripProperty: arbitrary record batches survive framing, with and
// without compression.
func TestRoundTripProperty(t *testing.T) {
	f := func(recs [][]byte) bool {
		var plain, compressed bytes.Buffer
		w := NewWriter(&plain)
		gw := NewGzipWriter(&compressed)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				return false
			}
			if err := gw.Append(r); err != nil {
				return false
			}
		}
		if err := gw.Close(); err != nil {
			return false
		}
		check := func(got [][]byte) bool {
			if len(got) != len(recs) {
				return false
			}
			for i := range recs {
				if !bytes.Equal(got[i], recs[i]) {
					return false
				}
			}
			return true
		}
		var got1 [][]byte
		if err := NewReader(&plain).ForEach(func(rec []byte) error {
			got1 = append(got1, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			return false
		}
		var got2 [][]byte
		if err := ScanGzipFile(compressed.Bytes(), func(rec []byte) error {
			got2 = append(got2, append([]byte(nil), rec...))
			return nil
		}); err != nil {
			return false
		}
		return check(got1) && check(got2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package recordio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func crcStream(t *testing.T, recs ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewCRCWriter(&buf)
	for _, r := range recs {
		if err := w.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != int64(len(recs)) || w.Bytes() != int64(buf.Len()) {
		t.Fatalf("writer accounting: count %d bytes %d, stream %d", w.Count(), w.Bytes(), buf.Len())
	}
	return buf.Bytes()
}

func TestCRCRoundTrip(t *testing.T) {
	want := []string{"alpha", "", "a much longer record with some bytes in it", "z"}
	data := crcStream(t, want...)
	r := NewCRCReader(bytes.NewReader(data))
	var got []string
	if err := r.ForEach(func(rec []byte) error {
		got = append(got, string(rec))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestCRCTornTail truncates the stream at every possible byte boundary:
// the reader must hand back the intact prefix and then report ErrTruncated
// (or a clean EOF exactly at a record boundary), never a bogus record.
func TestCRCTornTail(t *testing.T) {
	recs := []string{"first-record", "second-record", "third"}
	data := crcStream(t, recs...)
	// Record boundaries, for deciding how many whole records a cut keeps.
	var bounds []int
	{
		var buf bytes.Buffer
		w := NewCRCWriter(&buf)
		for _, r := range recs {
			w.Append([]byte(r))
			bounds = append(bounds, buf.Len())
		}
	}
	for cut := 0; cut < len(data); cut++ {
		whole := 0
		for _, b := range bounds {
			if cut >= b {
				whole++
			}
		}
		r := NewCRCReader(bytes.NewReader(data[:cut]))
		got := 0
		var err error
		for {
			var rec []byte
			rec, err = r.Next()
			if err != nil {
				break
			}
			if string(rec) != recs[got] {
				t.Fatalf("cut %d: record %d = %q", cut, got, rec)
			}
			got++
		}
		if got != whole {
			t.Fatalf("cut %d: read %d whole records, want %d", cut, got, whole)
		}
		atBoundary := cut == 0
		for _, b := range bounds {
			if cut == b {
				atBoundary = true
			}
		}
		if atBoundary && err != io.EOF {
			t.Errorf("cut %d (boundary): err = %v, want io.EOF", cut, err)
		}
		if !atBoundary && !errors.Is(err, ErrTruncated) {
			t.Errorf("cut %d (mid-record): err = %v, want ErrTruncated", cut, err)
		}
	}
}

func TestCRCFlippedByte(t *testing.T) {
	data := crcStream(t, "only-record-here")
	for i := range data {
		bad := bytes.Clone(data)
		bad[i] ^= 0x01
		r := NewCRCReader(bytes.NewReader(bad))
		_, err := r.Next()
		if err == nil {
			t.Fatalf("flip at %d: corrupt record read back cleanly", i)
		}
		// A flip in the uvarint length can also present as a truncated
		// stream (declared length now exceeds the bytes present); either
		// way the record must not decode.
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
			t.Errorf("flip at %d: err = %v", i, err)
		}
	}
}

func TestCRCInsaneLength(t *testing.T) {
	var buf bytes.Buffer
	lenBuf := make([]byte, binary.MaxVarintLen64)
	n := binary.PutUvarint(lenBuf, uint64(MaxRecordSize)+1)
	buf.Write(lenBuf[:n])
	buf.Write([]byte{0, 0, 0, 0, 'x'})
	if _, err := NewCRCReader(&buf).Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestCRCAppendRejectsOversizedRecord pins the write-side bound: a record
// the reader would reject as corrupt must never be writable, or an
// appender could produce a stream that can't be read back.
func TestCRCAppendRejectsOversizedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewCRCWriter(&buf)
	if err := w.Append(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record appended cleanly")
	}
	if buf.Len() != 0 || w.Count() != 0 {
		t.Fatalf("rejected append left %d bytes, count %d", buf.Len(), w.Count())
	}
}

func TestCRCForEachStopsOnFnError(t *testing.T) {
	data := crcStream(t, "a", "b", "c")
	boom := errors.New("boom")
	seen := 0
	err := NewCRCReader(bytes.NewReader(data)).ForEach(func([]byte) error {
		seen++
		if seen == 2 {
			return boom
		}
		return nil
	})
	if err != boom || seen != 2 {
		t.Fatalf("err = %v after %d records, want boom after 2", err, seen)
	}
}

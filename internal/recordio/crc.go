package recordio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// CRC framing extends the plain uvarint framing with a per-record checksum,
// which is what a write-ahead log needs: a crash can tear the final record
// mid-write, and a disk can hand back flipped bits, and the reader must be
// able to tell a clean end of stream from both. Each record is
//
//	uvarint payload length | 4-byte little-endian CRC-32C of payload | payload
//
// Readers distinguish three terminal conditions: io.EOF at a record
// boundary (clean end), ErrTruncated when the stream ends inside a record
// (the torn tail a crash leaves — recoverable by discarding the tail), and
// ErrCorrupt when a record is whole but its checksum or length lies (bit
// rot — the remainder of the stream cannot be trusted).

// ErrTruncated reports a stream that ends in the middle of a record — the
// torn final write of an interrupted appender. Everything before the torn
// record is intact.
var ErrTruncated = errors.New("recordio: truncated final record")

// castagnoli is the CRC-32C polynomial, the standard checksum for storage
// framing (iSCSI, ext4, leveldb logs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// crcHeaderLen is the fixed part of a frame after the uvarint length.
const crcHeaderLen = 4

// CRCWriter frames checksummed records onto an io.Writer.
type CRCWriter struct {
	w     io.Writer
	hdr   [binary.MaxVarintLen64 + crcHeaderLen]byte
	count int64
	bytes int64
}

// NewCRCWriter returns a CRCWriter framing onto w.
func NewCRCWriter(w io.Writer) *CRCWriter { return &CRCWriter{w: w} }

// Append writes one checksummed record. Records over MaxRecordSize are
// rejected here, on the write side: a reader treats such lengths as
// corruption, so letting one through would produce a stream that appends
// cleanly but can never be read back.
func (w *CRCWriter) Append(rec []byte) error {
	if len(rec) > MaxRecordSize {
		return fmt.Errorf("recordio: record of %d bytes exceeds MaxRecordSize", len(rec))
	}
	n := binary.PutUvarint(w.hdr[:], uint64(len(rec)))
	binary.LittleEndian.PutUint32(w.hdr[n:], crc32.Checksum(rec, castagnoli))
	if _, err := w.w.Write(w.hdr[:n+crcHeaderLen]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.count++
	w.bytes += int64(n + crcHeaderLen + len(rec))
	return nil
}

// Count returns the number of records appended.
func (w *CRCWriter) Count() int64 { return w.count }

// Bytes returns the number of framed bytes written.
func (w *CRCWriter) Bytes() int64 { return w.bytes }

// CRCReader scans checksummed records from an io.Reader.
type CRCReader struct {
	r   *bufio.Reader
	buf []byte
}

// NewCRCReader returns a CRCReader scanning r.
func NewCRCReader(r io.Reader) *CRCReader { return &CRCReader{r: bufio.NewReader(r)} }

// Next returns the next record, io.EOF at a clean end of stream,
// ErrTruncated when the stream ends inside a record, or ErrCorrupt when a
// checksum or declared length is wrong. The returned slice is reused by
// subsequent calls; copy it to retain it.
func (r *CRCReader) Next() ([]byte, error) {
	size, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, ErrTruncated
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if size > MaxRecordSize {
		return nil, fmt.Errorf("%w: record of %d bytes", ErrCorrupt, size)
	}
	var hdr [crcHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return nil, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(hdr[:])
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, ErrTruncated
	}
	if got := crc32.Checksum(r.buf, castagnoli); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (want %08x, got %08x)", ErrCorrupt, want, got)
	}
	return r.buf, nil
}

// ForEach scans every record, invoking fn on each. It returns nil at a
// clean end of stream and the terminal error otherwise; fn errors stop the
// scan immediately.
func (r *CRCReader) ForEach(fn func(rec []byte) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

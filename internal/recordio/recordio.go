// Package recordio frames variable-length records inside a byte stream and
// optionally compresses the stream with gzip. It is the on-disk layout used
// throughout the pipeline: Scribe aggregators write gzipped record streams
// to staging HDFS, the log mover re-frames them into big warehouse files,
// and the session store uses the same framing for materialized sequences.
//
// The format is a sequence of records, each a uvarint length followed by
// that many bytes. It supports streaming append and streaming scans without
// an index, which is all the paper's brute-force-scan workloads need.
package recordio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt reports a malformed record frame.
var ErrCorrupt = errors.New("recordio: corrupt record stream")

// MaxRecordSize bounds a single record (16 MiB); larger declared lengths
// are treated as corruption rather than allocated.
const MaxRecordSize = 16 << 20

// Writer frames records onto an io.Writer.
type Writer struct {
	w      io.Writer
	lenBuf [binary.MaxVarintLen64]byte
	count  int64
	bytes  int64
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Append writes one record.
func (w *Writer) Append(rec []byte) error {
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(rec)))
	if _, err := w.w.Write(w.lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(rec); err != nil {
		return err
	}
	w.count++
	w.bytes += int64(n + len(rec))
	return nil
}

// Count returns the number of records appended.
func (w *Writer) Count() int64 { return w.count }

// Bytes returns the number of framed bytes written (before any outer
// compression).
func (w *Writer) Bytes() int64 { return w.bytes }

// Reader scans records from an io.Reader.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader returns a Reader scanning r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Next returns the next record, or io.EOF at a clean end of stream. The
// returned slice is reused by subsequent calls; copy it to retain it.
func (r *Reader) Next() ([]byte, error) {
	size, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if size > MaxRecordSize {
		return nil, fmt.Errorf("%w: record of %d bytes", ErrCorrupt, size)
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("%w: truncated record: %v", ErrCorrupt, err)
	}
	return r.buf, nil
}

// ForEach scans every record in the stream, invoking fn on each. Scanning
// stops on the first error from fn.
func (r *Reader) ForEach(fn func(rec []byte) error) error {
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// GzipWriter couples a record Writer with gzip compression, the aggregator's
// "compressing data on the fly" (§2). Close flushes both layers.
type GzipWriter struct {
	*Writer
	gz *gzip.Writer
}

// NewGzipWriter returns a record writer that gzips its output onto w.
func NewGzipWriter(w io.Writer) *GzipWriter {
	gz := gzip.NewWriter(w)
	return &GzipWriter{Writer: NewWriter(gz), gz: gz}
}

// Close flushes the compressor; the underlying writer is not closed.
func (w *GzipWriter) Close() error { return w.gz.Close() }

// NewGzipReader returns a record reader that decompresses from r.
func NewGzipReader(r io.Reader) (*Reader, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return NewReader(gz), nil
}

// ScanGzipFile decodes a whole gzipped record stream held in memory,
// invoking fn on each record.
func ScanGzipFile(data []byte, fn func(rec []byte) error) error {
	r, err := NewGzipReader(bytesReader(data))
	if err != nil {
		return err
	}
	return r.ForEach(fn)
}

// bytesReader avoids importing bytes for one call site.
type byteSliceReader struct {
	data []byte
	off  int
}

func bytesReader(data []byte) io.Reader { return &byteSliceReader{data: data} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

package recordio

import (
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestCursorRoundTrip(t *testing.T) {
	var buf []byte
	buf = binary.AppendUvarint(buf, 300)
	buf = binary.AppendVarint(buf, -42)
	buf = append(buf, 7)
	buf = binary.AppendUvarint(buf, uint64(len("hello")))
	buf = append(buf, "hello"...)
	buf = binary.AppendUvarint(buf, 2) // count of entries below
	buf = append(buf, 'x', 'y')

	c := NewCursor(buf)
	if v := c.Uvarint("u"); v != 300 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := c.Varint("v"); v != -42 {
		t.Fatalf("varint = %d", v)
	}
	if b := c.Byte("b"); b != 7 {
		t.Fatalf("byte = %d", b)
	}
	if s := c.String("s"); s != "hello" {
		t.Fatalf("string = %q", s)
	}
	if n := c.Count("n"); n != 2 {
		t.Fatalf("count = %d", n)
	}
	if c.Byte("x") != 'x' || c.Byte("y") != 'y' {
		t.Fatal("trailing bytes wrong")
	}
	if !c.Ok() || c.Err() != nil || !c.Empty() || c.Remaining() != 0 {
		t.Fatalf("end state: ok=%v err=%v remaining=%d", c.Ok(), c.Err(), c.Remaining())
	}
}

func TestCursorStickyFailure(t *testing.T) {
	// A string whose declared length exceeds the buffer.
	var buf []byte
	buf = binary.AppendUvarint(buf, 100)
	buf = append(buf, "short"...)
	c := NewCursor(buf)
	if s := c.String("name"); s != "" {
		t.Fatalf("overlong string = %q", s)
	}
	if c.Ok() {
		t.Fatal("cursor still ok after bad read")
	}
	// Every later read fails without resurrecting the cursor, and the
	// first failing field is the one reported.
	if v := c.Uvarint("later"); v != 0 {
		t.Fatalf("read after failure = %d", v)
	}
	err := c.Err()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "name") {
		t.Fatalf("err does not name the first bad field: %v", err)
	}
}

func TestCursorEmptyReads(t *testing.T) {
	c := NewCursor(nil)
	if c.Uvarint("u") != 0 || c.Ok() {
		t.Fatal("uvarint from empty buffer succeeded")
	}
	c = NewCursor(nil)
	if c.Byte("b") != 0 || c.Ok() {
		t.Fatal("byte from empty buffer succeeded")
	}
	c = NewCursor(nil)
	if c.Varint("v") != 0 || c.Ok() {
		t.Fatal("varint from empty buffer succeeded")
	}
}

func TestCursorCountBounds(t *testing.T) {
	// A count larger than the remaining bytes is corruption: each entry
	// costs at least one byte.
	var buf []byte
	buf = binary.AppendUvarint(buf, 1000)
	buf = append(buf, 1, 2, 3)
	c := NewCursor(buf)
	if n := c.Count("entries"); n != 0 || c.Ok() {
		t.Fatalf("count = %d, ok = %v", n, c.Ok())
	}
	// A count equal to the remainder is the legal extreme.
	buf = nil
	buf = binary.AppendUvarint(buf, 3)
	buf = append(buf, 1, 2, 3)
	c = NewCursor(buf)
	if n := c.Count("entries"); n != 3 || !c.Ok() {
		t.Fatalf("count = %d, ok = %v", n, c.Ok())
	}
}

func TestCursorBytesAlias(t *testing.T) {
	var buf []byte
	buf = binary.AppendUvarint(buf, 3)
	buf = append(buf, 'a', 'b', 'c')
	c := NewCursor(buf)
	b := c.Bytes("blob")
	if string(b) != "abc" {
		t.Fatalf("bytes = %q", b)
	}
	if !c.Empty() {
		t.Fatalf("remaining = %d", c.Remaining())
	}
}

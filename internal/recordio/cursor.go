package recordio

import (
	"encoding/binary"
	"fmt"
)

// Cursor decodes the varint wire idiom shared by every binary format in
// the repository — WAL records, snapshot records, and dataflow spill
// tuples: uvarints, zig-zag varints, and length-prefixed strings/bytes,
// all with bounds checks. It replaces the hand-rolled decode closures
// that used to be copied between decoders, so a bounds-check fix lands
// once.
//
// The cursor is sticky: the first malformed read marks it corrupt, every
// later read returns a zero value, and Err reports the first failing
// field. Decoders therefore read a whole region optimistically and check
// Err (or Ok) once before acting on the values.
type Cursor struct {
	buf  []byte
	bad  bool
	what string // first failing field, for the error message
}

// NewCursor returns a cursor over buf. The cursor reads buf in place and
// never mutates it; String copies, Bytes aliases.
func NewCursor(buf []byte) *Cursor { return &Cursor{buf: buf} }

// fail marks the cursor corrupt at the named field. The first failure
// wins; it also empties the remaining buffer so every later read fails
// without touching stale bytes.
func (c *Cursor) fail(what string) {
	if !c.bad {
		c.bad = true
		c.what = what
	}
	c.buf = nil
}

// Ok reports whether every read so far was in bounds.
func (c *Cursor) Ok() bool { return !c.bad }

// Err returns nil, or ErrCorrupt wrapped with the first failing field.
func (c *Cursor) Err() error {
	if !c.bad {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrCorrupt, c.what)
}

// Remaining returns the number of unread bytes.
func (c *Cursor) Remaining() int { return len(c.buf) }

// Empty reports whether the cursor has been fully consumed.
func (c *Cursor) Empty() bool { return len(c.buf) == 0 }

// Uvarint reads one unsigned varint.
func (c *Cursor) Uvarint(what string) uint64 {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.buf = c.buf[n:]
	return v
}

// Varint reads one zig-zag signed varint.
func (c *Cursor) Varint(what string) int64 {
	v, n := binary.Varint(c.buf)
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.buf = c.buf[n:]
	return v
}

// Byte reads one raw byte.
func (c *Cursor) Byte(what string) byte {
	if len(c.buf) < 1 {
		c.fail(what)
		return 0
	}
	b := c.buf[0]
	c.buf = c.buf[1:]
	return b
}

// Bool reads one byte and reports whether it is 1.
func (c *Cursor) Bool(what string) bool { return c.Byte(what) == 1 }

// Bytes reads a uvarint length followed by that many bytes. The returned
// slice aliases the cursor's buffer; copy it to retain it past the
// buffer's lifetime.
func (c *Cursor) Bytes(what string) []byte {
	l, n := binary.Uvarint(c.buf)
	if n <= 0 || uint64(len(c.buf)-n) < l {
		c.fail(what)
		return nil
	}
	b := c.buf[n : n+int(l)]
	c.buf = c.buf[n+int(l):]
	return b
}

// String reads a uvarint length followed by that many bytes, copied into
// a string.
func (c *Cursor) String(what string) string { return string(c.Bytes(what)) }

// Count reads a uvarint element count and bounds it by the remaining
// bytes: every element of a length-prefixed sequence costs at least one
// byte, so a count beyond the remainder is corruption — rejecting it here
// keeps a decoder's preallocation from ballooning on a lying length.
func (c *Cursor) Count(what string) int {
	v, n := binary.Uvarint(c.buf)
	if n <= 0 || v > uint64(len(c.buf)-n) {
		c.fail(what)
		return 0
	}
	c.buf = c.buf[n:]
	return int(v)
}

package analytics

import (
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/geo"
	"unilog/internal/hdfs"
	"unilog/internal/warehouse"
)

// TestRollupsEmptyDay: a day with no warehouse data yields an empty (not
// erroring) rollup table, and RollupTotal over it is zero at every level.
func TestRollupsEmptyDay(t *testing.T) {
	fs := hdfs.New(0)
	j := dataflow.NewJob("rollups-empty", fs)
	r, err := Rollups(j, day.AddDate(0, 0, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Fatalf("empty day produced %d rows", len(r))
	}
	for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
		if got := RollupTotal(r, events.RollupLevel(lvl), "web:*:*:*:*:profile_click"); got != 0 {
			t.Errorf("level %d total = %d on empty day", lvl, got)
		}
	}
}

func rollupEvent(name string, hour int, user int64, country string) *events.ClientEvent {
	return &events.ClientEvent{
		Initiator: events.InitiatorClientUser,
		Name:      events.MustParseName(name),
		UserID:    user,
		SessionID: "sess",
		IP:        geo.IPFor(country, user+1),
		Timestamp: day.Add(time.Duration(hour) * time.Hour).UnixMilli(),
	}
}

// TestRollupTotalPerLevel plants a hand-built day whose counts differ at
// every masking level and checks RollupTotal at each of the five §3.2
// schemas, plus the country/logged-in cells of the full table.
func TestRollupTotalPerLevel(t *testing.T) {
	fs := hdfs.New(0)
	w := warehouse.NewWriter(fs, events.Category)
	add := func(n int, name string, user int64, country string) {
		for i := 0; i < n; i++ {
			if err := w.Append(rollupEvent(name, i%3, user, country)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 3 logged-in US clicks from the stream component, 2 logged-out JP
	// clicks from the grid component (same section), 1 from another page.
	add(3, "web:home:mentions:stream:avatar:profile_click", 7, "us")
	add(2, "web:home:mentions:grid:avatar:profile_click", 0, "jp")
	add(1, "web:profile:followers:list:avatar:profile_click", 9, "us")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	j := dataflow.NewJob("rollups", fs)
	r, err := Rollups(j, day)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		level events.RollupLevel
		name  string
		want  int64
	}{
		{0, "web:home:mentions:stream:avatar:profile_click", 3},
		{0, "web:home:mentions:grid:avatar:profile_click", 2},
		{1, "web:home:mentions:stream:*:profile_click", 3},
		{1, "web:home:mentions:grid:*:profile_click", 2},
		{2, "web:home:mentions:*:*:profile_click", 5},
		{3, "web:home:*:*:*:profile_click", 5},
		{3, "web:profile:*:*:*:profile_click", 1},
		{4, "web:*:*:*:*:profile_click", 6},
		{4, "iphone:*:*:*:*:profile_click", 0},
		{2, "web:home:mentions:stream:*:profile_click", 0}, // wrong level for the name
	}
	for _, tc := range cases {
		if got := RollupTotal(r, tc.level, tc.name); got != tc.want {
			t.Errorf("RollupTotal(level %d, %q) = %d, want %d", tc.level, tc.name, got, tc.want)
		}
	}

	// Every level conserves the day's event count.
	perLevel := make([]int64, events.NumRollupLevels)
	for k, n := range r {
		perLevel[k.Level] += n
	}
	for lvl, n := range perLevel {
		if n != 6 {
			t.Errorf("level %d sums to %d, want 6", lvl, n)
		}
	}

	// The full table keeps the country and logged-in breakdown.
	k := RollupKey{Level: 0, Name: "web:home:mentions:stream:avatar:profile_click", Country: "us", LoggedIn: true}
	if r[k] != 3 {
		t.Errorf("r[%+v] = %d, want 3", k, r[k])
	}
	k = RollupKey{Level: 0, Name: "web:home:mentions:grid:avatar:profile_click", Country: "jp", LoggedIn: false}
	if r[k] != 2 {
		t.Errorf("r[%+v] = %d, want 2", k, r[k])
	}
}

// Package analytics implements the paper's §5 applications over session
// sequences: event counting (the CountClientEvents UDF), funnel analytics
// (the ClientEventsFunnel UDF), and click-through / follow-through rates.
//
// Each UDF is initialized with the client event dictionary and a selection
// of event names — a wildcard pattern or an arbitrary regular expression,
// "automatically expanded to include all matching events" (§5.2) — after
// which evaluation is pure string manipulation over the unicode session
// sequences.
//
// For every sequence-based query there is a raw-logs counterpart that
// performs the same analysis the pre-materialization way: scan the day's
// client events, group by (user id, session id), re-sessionize, then
// analyze. The pairs are deliberately kept side by side; their cost gap is
// the paper's performance argument (experiments E2, E6).
package analytics

import (
	"regexp"
	"time"

	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/session"
)

// Matcher selects event names. events.Pattern.MatchesString and
// regexp.MatchString both satisfy it.
type Matcher func(name string) bool

// MatcherFromPattern adapts a wildcard pattern.
func MatcherFromPattern(p string) (Matcher, error) {
	pat, err := events.ParsePattern(p)
	if err != nil {
		return nil, err
	}
	return pat.MatchesString, nil
}

// MatcherFromRegexp adapts an arbitrary regular expression over the full
// colon-joined event name.
func MatcherFromRegexp(expr string) (Matcher, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, err
	}
	return re.MatchString, nil
}

// Counter is the CountClientEvents UDF (§5.2): it counts occurrences of a
// set of events inside session sequences. The event set is expanded once
// against the dictionary; evaluation touches only sequence symbols.
type Counter struct {
	symbols map[rune]struct{}
}

// NewCounter builds a counter for every dictionary event accepted by m.
func NewCounter(dict *session.Dictionary, m Matcher) *Counter {
	c := &Counter{symbols: make(map[rune]struct{})}
	for _, r := range dict.SymbolsWhere(m) {
		c.symbols[r] = struct{}{}
	}
	return c
}

// NumSymbols reports how many event types the matcher expanded to.
func (c *Counter) NumSymbols() int { return len(c.symbols) }

// Count returns the number of matching events in one session sequence —
// the SUM variant of the paper's counting script.
func (c *Counter) Count(seq string) int64 {
	var n int64
	for _, r := range seq {
		if _, ok := c.symbols[r]; ok {
			n++
		}
	}
	return n
}

// Contains reports whether the sequence has at least one matching event —
// the COUNT variant, "useful for understanding what fraction of users take
// advantage of a particular feature" (§5.2).
func (c *Counter) Contains(seq string) bool {
	for _, r := range seq {
		if _, ok := c.symbols[r]; ok {
			return true
		}
	}
	return false
}

// CountReport aggregates a counting query over a day.
type CountReport struct {
	// Events is the total number of matching events (SUM).
	Events int64
	// Sessions is the number of sessions containing a match (COUNT).
	Sessions int64
	// TotalSessions is the number of sessions examined.
	TotalSessions int64
}

// CountSequencesDay runs a counting query over the day's materialized
// session sequences using the dataflow engine, so job costs are metered.
func CountSequencesDay(j *dataflow.Job, day time.Time, dict *session.Dictionary, m Matcher) (CountReport, error) {
	var rep CountReport
	d, err := j.LoadSessionSequencesDay(day)
	if err != nil {
		return rep, err
	}
	c := NewCounter(dict, m)
	seqIdx := d.Schema().MustIndex("sequence")
	err = d.Each(func(t dataflow.Tuple) error {
		seq := t[seqIdx].(string)
		n := c.Count(seq)
		rep.Events += n
		if n > 0 {
			rep.Sessions++
		}
		rep.TotalSessions++
		return nil
	})
	return rep, err
}

// CountRawDay answers the same query from the raw client event logs: a full
// scan, then the reduce-side re-sessionization the paper wants to avoid.
// The group-by uses the shuffle's secondary sort (GroupByOrdered), so each
// group streams past already in timestamp order — the reducer never
// re-sorts it.
func CountRawDay(j *dataflow.Job, day time.Time, m Matcher) (CountReport, error) {
	var rep CountReport
	// Early projection (§4.1), pushed into the columnar scan: sealed hours
	// read only the four referenced column streams.
	p, err := columnar.LoadDay(j, day, dataflow.Selection{
		Columns: []string{"user_id", "session_id", "name", "timestamp"},
	})
	if err != nil {
		return rep, err
	}
	g, err := p.GroupByOrdered("timestamp", "user_id", "session_id")
	if err != nil {
		return rep, err
	}
	defer g.Close()
	nameIdx := 2
	tsIdx := 3
	gapMs := session.InactivityGap.Milliseconds()
	err = g.EachGroup(func(key dataflow.Tuple, group []dataflow.Tuple) error {
		segMatches := int64(0)
		for i, t := range group {
			if i > 0 && t[tsIdx].(int64)-group[i-1][tsIdx].(int64) > gapMs {
				rep.TotalSessions++
				if segMatches > 0 {
					rep.Sessions++
				}
				segMatches = 0
			}
			if m(t[nameIdx].(string)) {
				rep.Events++
				segMatches++
			}
		}
		rep.TotalSessions++
		if segMatches > 0 {
			rep.Sessions++
		}
		return nil
	})
	return rep, err
}

// RateReport is a click-through / follow-through measurement (§4.1, §5.2).
type RateReport struct {
	Impressions int64
	Actions     int64
}

// Rate returns Actions per Impression.
func (r RateReport) Rate() float64 {
	if r.Impressions == 0 {
		return 0
	}
	return float64(r.Actions) / float64(r.Impressions)
}

// RateOverSequences computes CTR/FTR-style rates from materialized
// sequences: "it suffices to know that an impression was followed by a
// click or follow event" (§4.1). Counting is global per session rather than
// positional, matching the paper's coarse-grained common case.
func RateOverSequences(fs *hdfs.FS, day time.Time, dict *session.Dictionary, impressions, actions Matcher) (RateReport, error) {
	var rep RateReport
	ci := NewCounter(dict, impressions)
	ca := NewCounter(dict, actions)
	err := session.ScanDay(fs, day, func(r *session.Record) error {
		rep.Impressions += ci.Count(r.Sequence)
		rep.Actions += ca.Count(r.Sequence)
		return nil
	})
	return rep, err
}

package analytics

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/session"
)

// Funnel is the ClientEventsFunnel UDF (§5.3): the data scientist specifies
// an ordered list of stages, each a set of event names; a session completes
// stage i if a stage-i event occurs after its stage-(i-1) match.
//
// The paper's implementation "translates the funnel into a regular
// expression match over the session sequence string"; Regexp exposes that
// translation, and the linear scanner in Depth is verified equivalent to it
// by tests.
type Funnel struct {
	stages  []map[rune]struct{}
	classes []string // regexp character class per stage
}

// NewFunnel expands each stage matcher against the dictionary. Stages that
// match no known event are permitted (they simply never complete).
func NewFunnel(dict *session.Dictionary, stages ...Matcher) *Funnel {
	f := &Funnel{}
	for _, m := range stages {
		set := make(map[rune]struct{})
		var class []rune
		for _, r := range dict.SymbolsWhere(m) {
			set[r] = struct{}{}
			class = append(class, r)
		}
		f.stages = append(f.stages, set)
		f.classes = append(f.classes, runeClass(class))
	}
	return f
}

// NewFunnelFromNames is NewFunnel with exact event names per stage.
func NewFunnelFromNames(dict *session.Dictionary, stageNames ...string) *Funnel {
	ms := make([]Matcher, len(stageNames))
	for i, n := range stageNames {
		name := n
		ms[i] = func(s string) bool { return s == name }
	}
	return NewFunnel(dict, ms...)
}

// runeClass renders a regexp character class for the given runes.
func runeClass(rs []rune) string {
	if len(rs) == 0 {
		// A class that matches nothing.
		return `[^\x{0}-\x{10FFFF}]`
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	var b strings.Builder
	b.WriteString("[")
	for _, r := range rs {
		fmt.Fprintf(&b, `\x{%X}`, r)
	}
	b.WriteString("]")
	return b.String()
}

// NumStages returns the number of funnel stages.
func (f *Funnel) NumStages() int { return len(f.stages) }

// Depth returns how many stages the session completed: 0 means it never
// entered the funnel, NumStages means it flowed all the way through.
func (f *Funnel) Depth(seq string) int {
	stage := 0
	for _, r := range seq {
		if stage == len(f.stages) {
			break
		}
		if _, ok := f.stages[stage][r]; ok {
			stage++
		}
	}
	return stage
}

// Regexp returns the paper's regular-expression translation of the first k
// stages: stage classes joined by ".*".
func (f *Funnel) Regexp(k int) (*regexp.Regexp, error) {
	if k > len(f.classes) {
		k = len(f.classes)
	}
	return regexp.Compile(strings.Join(f.classes[:k], ".*"))
}

// Report is the funnel output, per the paper's worked example:
//
//	(0, 490123)
//	(1, 297071)
//	...
//
// Completed[i] counts sessions that completed stage i (0-indexed);
// Examined is the total number of sessions evaluated.
type Report struct {
	Examined  int64
	Completed []int64
}

// Abandonment returns the per-stage abandonment rate: the fraction of
// sessions that completed stage i but not stage i+1.
func (r Report) Abandonment() []float64 {
	out := make([]float64, 0, len(r.Completed)-1)
	for i := 0; i+1 < len(r.Completed); i++ {
		if r.Completed[i] == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, 1-float64(r.Completed[i+1])/float64(r.Completed[i]))
	}
	return out
}

// Observe folds one session into the report.
func (r *Report) Observe(depth int) {
	r.Examined++
	for i := 0; i < depth && i < len(r.Completed); i++ {
		r.Completed[i]++
	}
}

// FunnelSequencesDay evaluates the funnel over a day of materialized
// session sequences.
func FunnelSequencesDay(j *dataflow.Job, day time.Time, f *Funnel) (Report, error) {
	rep := Report{Completed: make([]int64, f.NumStages())}
	d, err := j.LoadSessionSequencesDay(day)
	if err != nil {
		return rep, err
	}
	seqIdx := d.Schema().MustIndex("sequence")
	err = d.Each(func(t dataflow.Tuple) error {
		rep.Observe(f.Depth(t[seqIdx].(string)))
		return nil
	})
	return rep, err
}

// UniqueUsersPerStage is the §5.3 variant "translating these figures into
// the number of users (as opposed to sessions) is simply a matter of
// applying the unique operator": distinct user ids per completed stage.
func UniqueUsersPerStage(j *dataflow.Job, day time.Time, f *Funnel) ([]int64, error) {
	d, err := j.LoadSessionSequencesDay(day)
	if err != nil {
		return nil, err
	}
	seqIdx := d.Schema().MustIndex("sequence")
	uidIdx := d.Schema().MustIndex("user_id")
	sets := make([]map[int64]struct{}, f.NumStages())
	for i := range sets {
		sets[i] = make(map[int64]struct{})
	}
	err = d.Each(func(t dataflow.Tuple) error {
		depth := f.Depth(t[seqIdx].(string))
		uid := t[uidIdx].(int64)
		for i := 0; i < depth; i++ {
			sets[i][uid] = struct{}{}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]int64, len(sets))
	for i, s := range sets {
		out[i] = int64(len(s))
	}
	return out, nil
}

// FunnelRawDay answers the same funnel question from the raw client event
// logs: full scan, group-by, re-sessionize, then walk each session — the
// cost the materialized sequences amortize away.
func FunnelRawDay(j *dataflow.Job, day time.Time, stageMatch []Matcher) (Report, error) {
	rep := Report{Completed: make([]int64, len(stageMatch))}
	// Projection pushed into the columnar scan; unsealed hours fall back
	// to row files with the projection applied after decode.
	p, err := columnar.LoadDay(j, day, dataflow.Selection{
		Columns: []string{"user_id", "session_id", "name", "timestamp"},
	})
	if err != nil {
		return rep, err
	}
	// Secondary sort on the shuffle: each group arrives in timestamp order,
	// so the funnel walk streams it without a per-group re-sort.
	g, err := p.GroupByOrdered("timestamp", "user_id", "session_id")
	if err != nil {
		return rep, err
	}
	defer g.Close()
	gapMs := session.InactivityGap.Milliseconds()
	err = g.EachGroup(func(key dataflow.Tuple, group []dataflow.Tuple) error {
		stage := 0
		flush := func() {
			rep.Observe(stage)
			stage = 0
		}
		for i, t := range group {
			if i > 0 && t[3].(int64)-group[i-1][3].(int64) > gapMs {
				flush()
			}
			if stage < len(stageMatch) && stageMatch[stage](t[2].(string)) {
				stage++
			}
		}
		flush()
		return nil
	})
	return rep, err
}

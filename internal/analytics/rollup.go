package analytics

import (
	"sort"
	"time"

	"unilog/internal/columnar"
	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/geo"
)

// RollupKey identifies one aggregated metric row: a (possibly wildcarded)
// event name at one rollup level, broken down by country and logged-in
// status, exactly as §3.2 describes the automatic Oink aggregations that
// feed the internal dashboard.
type RollupKey struct {
	Level    events.RollupLevel
	Name     string
	Country  string
	LoggedIn bool
}

// Rollups computes, for one day of raw client events, the counts of events
// under all five §3.2 schemas:
//
//	(client, page, section, component, element, action)
//	(client, page, section, component, *, action)
//	(client, page, section, *, *, action)
//	(client, page, *, *, *, action)
//	(client, *, *, *, *, action)
//
// "without any additional intervention from the application developer,
// rudimentary statistics are computed and made available on a daily basis."
//
// The job runs map-combine-reduce: events stream off the scan (one split in
// memory at a time), a map-side combiner pre-aggregates the five rollup
// rows per event into partial counts keyed by rollup row, and only those
// partials — a relation the size of the distinct key space, not five times
// the event count — shuffle into the final GroupBy, which spills under
// Job.MemoryBudget like any external operator.
//
// The scan goes through the columnar source projected to the three columns
// the rollup touches; hours not yet sealed into chunks fall back to their
// row files, with identical output either way.
func Rollups(j *dataflow.Job, day time.Time) (map[RollupKey]int64, error) {
	d, err := columnar.LoadDay(j, day, dataflow.Selection{Columns: []string{"name", "ip", "logged_in"}})
	if err != nil {
		return nil, err
	}
	nameIdx := d.Schema().MustIndex("name")
	ipIdx := d.Schema().MustIndex("ip")
	liIdx := d.Schema().MustIndex("logged_in")

	// Map side: stream the day once, folding each event's five rollup rows
	// into the combiner table.
	partial := make(map[RollupKey]int64)
	err = d.Each(func(t dataflow.Tuple) error {
		name, err := events.ParseName(t[nameIdx].(string))
		if err != nil {
			return nil // malformed names are dropped, as the FlatMap did
		}
		country := geo.CountryOf(t[ipIdx].(string))
		loggedIn := t[liIdx].(bool)
		for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
			k := RollupKey{
				Level:    events.RollupLevel(lvl),
				Name:     name.Rollup(events.RollupLevel(lvl)).String(),
				Country:  country,
				LoggedIn: loggedIn,
			}
			partial[k]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Shuffle only the combined partials. Sorting the keys keeps the
	// synthetic relation deterministic run over run.
	keys := make([]RollupKey, 0, len(partial))
	for k := range partial {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.Level != kb.Level {
			return ka.Level < kb.Level
		}
		if ka.Name != kb.Name {
			return ka.Name < kb.Name
		}
		if ka.Country != kb.Country {
			return ka.Country < kb.Country
		}
		return !ka.LoggedIn && kb.LoggedIn
	})
	tuples := make([]dataflow.Tuple, len(keys))
	for i, k := range keys {
		tuples[i] = dataflow.Tuple{int64(k.Level), k.Name, k.Country, k.LoggedIn, partial[k]}
	}
	rows := dataflow.NewDataset(j, dataflow.Schema{"level", "rolled", "country", "logged_in", "n"}, tuples)

	// Reduce side: the metered group-by over the combined rows, summing
	// the partial counts. With a combiner every group has one partial per
	// map side, so this is cheap — which is the point.
	g, err := rows.GroupBy("level", "rolled", "country", "logged_in")
	if err != nil {
		return nil, err
	}
	defer g.Close()
	counts, err := g.Aggregate(dataflow.Sum("n", "n"))
	if err != nil {
		return nil, err
	}
	out := make(map[RollupKey]int64, len(keys))
	err = counts.Each(func(t dataflow.Tuple) error {
		k := RollupKey{
			Level:    events.RollupLevel(t[0].(int64)),
			Name:     t[1].(string),
			Country:  t[2].(string),
			LoggedIn: t[3].(bool),
		}
		out[k] = t[4].(int64)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RollupTotal sums a rolled-up name across countries and login status at
// the given level — the top-line dashboard number.
func RollupTotal(rollups map[RollupKey]int64, level events.RollupLevel, name string) int64 {
	var total int64
	for k, n := range rollups {
		if k.Level == level && k.Name == name {
			total += n
		}
	}
	return total
}

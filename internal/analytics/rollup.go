package analytics

import (
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/geo"
)

// RollupKey identifies one aggregated metric row: a (possibly wildcarded)
// event name at one rollup level, broken down by country and logged-in
// status, exactly as §3.2 describes the automatic Oink aggregations that
// feed the internal dashboard.
type RollupKey struct {
	Level    events.RollupLevel
	Name     string
	Country  string
	LoggedIn bool
}

// Rollups computes, for one day of raw client events, the counts of events
// under all five §3.2 schemas:
//
//	(client, page, section, component, element, action)
//	(client, page, section, component, *, action)
//	(client, page, section, *, *, action)
//	(client, page, *, *, *, action)
//	(client, *, *, *, *, action)
//
// "without any additional intervention from the application developer,
// rudimentary statistics are computed and made available on a daily basis."
func Rollups(j *dataflow.Job, day time.Time) (map[RollupKey]int64, error) {
	d, err := j.LoadClientEventsDay(day)
	if err != nil {
		return nil, err
	}
	nameIdx := d.Schema().MustIndex("name")
	ipIdx := d.Schema().MustIndex("ip")
	liIdx := d.Schema().MustIndex("logged_in")

	// FlatMap each event to its five rollup rows, then count per key. The
	// dataflow group-by meters the shuffle this daily job costs.
	rows := d.FlatMap(dataflow.Schema{"level", "rolled", "country", "logged_in"}, func(t dataflow.Tuple) []dataflow.Tuple {
		name, err := events.ParseName(t[nameIdx].(string))
		if err != nil {
			return nil
		}
		country := geo.CountryOf(t[ipIdx].(string))
		loggedIn := t[liIdx].(bool)
		out := make([]dataflow.Tuple, events.NumRollupLevels)
		for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
			out[lvl] = dataflow.Tuple{int64(lvl), name.Rollup(events.RollupLevel(lvl)).String(), country, loggedIn}
		}
		return out
	})
	g, err := rows.GroupBy("level", "rolled", "country", "logged_in")
	if err != nil {
		return nil, err
	}
	counts, err := g.Aggregate(dataflow.Count("n"))
	if err != nil {
		return nil, err
	}
	out := make(map[RollupKey]int64, counts.Len())
	for _, t := range counts.Tuples() {
		k := RollupKey{
			Level:    events.RollupLevel(t[0].(int64)),
			Name:     t[1].(string),
			Country:  t[2].(string),
			LoggedIn: t[3].(bool),
		}
		out[k] = t[4].(int64)
	}
	return out, nil
}

// RollupTotal sums a rolled-up name across countries and login status at
// the given level — the top-line dashboard number.
func RollupTotal(rollups map[RollupKey]int64, level events.RollupLevel, name string) int64 {
	var total int64
	for k, n := range rollups {
		if k.Level == level && k.Name == name {
			total += n
		}
	}
	return total
}

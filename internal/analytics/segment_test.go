package analytics

import (
	"math"
	"strings"
	"testing"

	"unilog/internal/dataflow"
	"unilog/internal/geo"
	"unilog/internal/users"
	"unilog/internal/workload"
)

// TestSegmentedCTR is the §4.1 ad-hoc query: CTR for users in one country,
// via join-with-users-table + selection. The planted CTR is country-
// independent, so each sufficiently large segment must recover it; and
// segment impressions must sum to the logged-in total.
func TestSegmentedCTR(t *testing.T) {
	c := buildCorpus(t)
	if err := users.Write(c.fs, c.truth); err != nil {
		t.Fatal(err)
	}
	usersJob := dataflow.NewJob("users", c.fs)
	usersDS, err := usersJob.Load(users.Dir, users.Format())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := usersDS.Count(); err != nil || n != c.truth.UniqueUsers {
		t.Fatalf("users table has %d rows, %v, want %d", n, err, c.truth.UniqueUsers)
	}

	impSuffix := workload.FeatureImpressionName("web", workload.FeatureWhoToFollow)[len("web"):]
	clkSuffix := workload.FeatureClickName("web", workload.FeatureWhoToFollow)[len("web"):]
	imp := func(n string) bool { return strings.HasSuffix(n, impSuffix) }
	clk := func(n string) bool { return strings.HasSuffix(n, clkSuffix) }

	cfg := workload.DefaultConfig(day)
	var segmentImps int64
	for _, country := range geo.Countries {
		j := dataflow.NewJob("segment-"+country, c.fs)
		rep, err := RateForSegment(j, day, c.dict, imp, clk, usersDS, ColumnEquals("country", country))
		if err != nil {
			t.Fatal(err)
		}
		segmentImps += rep.Impressions
		if rep.Impressions > 300 {
			if math.Abs(rep.Rate()-cfg.CTR[workload.FeatureWhoToFollow]) > 0.08 {
				t.Fatalf("%s segment CTR = %.3f, planted %.3f (n=%d)",
					country, rep.Rate(), cfg.CTR[workload.FeatureWhoToFollow], rep.Impressions)
			}
		}
	}
	// Segments partition the logged-in traffic: their impressions sum to
	// the all-users impressions minus logged-out sessions' impressions.
	global, err := RateOverSequences(c.fs, day, c.dict, imp, clk)
	if err != nil {
		t.Fatal(err)
	}
	if segmentImps > global.Impressions {
		t.Fatalf("segments sum %d > global %d", segmentImps, global.Impressions)
	}
	// Logged-out browse sessions see the feature too; the difference is
	// exactly their share. Verify it is non-negative and plausible.
	loggedOutShare := global.Impressions - segmentImps
	if loggedOutShare < 0 {
		t.Fatalf("negative logged-out share %d", loggedOutShare)
	}
}

func TestColumnEquals(t *testing.T) {
	s := dataflow.Schema{"a", "country"}
	p := ColumnEquals("country", "uk")
	if !p(s, dataflow.Tuple{int64(1), "uk"}) || p(s, dataflow.Tuple{int64(1), "us"}) {
		t.Fatal("predicate wrong")
	}
	if p(dataflow.Schema{"a"}, dataflow.Tuple{int64(1)}) {
		t.Fatal("missing column matched")
	}
}

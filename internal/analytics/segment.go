package analytics

import (
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/session"
)

// This file implements the §4.1/§5.2 ad-hoc segmentation idiom: "data
// scientists often desire statistics for arbitrary subsets of users (e.g.,
// casual users in the U.K. ...), which require ad hoc queries" — "a join
// with the users table followed by selection with the appropriate criteria".

// RateForSegment computes an impression/action rate over the sessions of a
// user segment: the day's session sequences are joined with the users
// dimension table on user_id, the segment predicate selects rows, and the
// counting UDFs run on the surviving sequences.
//
// users must carry a "user_id" column; the predicate sees the joined tuple
// with the users columns appended after SessionSchema.
func RateForSegment(
	j *dataflow.Job,
	day time.Time,
	dict *session.Dictionary,
	impressions, actions Matcher,
	users *dataflow.Dataset,
	segment func(dataflow.Schema, dataflow.Tuple) bool,
) (RateReport, error) {
	var rep RateReport
	seqs, err := j.LoadSessionSequencesDay(day)
	if err != nil {
		return rep, err
	}
	joined, err := seqs.Join(users, "user_id", "user_id")
	if err != nil {
		return rep, err
	}
	defer joined.Close()
	schema := joined.Schema()
	selected := joined.Filter(func(t dataflow.Tuple) bool { return segment(schema, t) })

	ci := NewCounter(dict, impressions)
	ca := NewCounter(dict, actions)
	seqIdx := schema.MustIndex("sequence")
	err = selected.Each(func(t dataflow.Tuple) error {
		seq := t[seqIdx].(string)
		rep.Impressions += ci.Count(seq)
		rep.Actions += ca.Count(seq)
		return nil
	})
	return rep, err
}

// ColumnEquals returns a segment predicate matching one column's value —
// the "users in the U.K." style selection.
func ColumnEquals(column, value string) func(dataflow.Schema, dataflow.Tuple) bool {
	return func(s dataflow.Schema, t dataflow.Tuple) bool {
		i, err := s.Index(column)
		if err != nil {
			return false
		}
		v, ok := t[i].(string)
		return ok && v == value
	}
}

package analytics

import (
	"math"
	"testing"
	"time"

	"unilog/internal/dataflow"
	"unilog/internal/events"
	"unilog/internal/hdfs"
	"unilog/internal/session"
	"unilog/internal/workload"
)

var day = time.Date(2012, 8, 21, 0, 0, 0, 0, time.UTC)

// corpus builds one shared warehouse + session store for the test suite.
type corpus struct {
	fs    *hdfs.FS
	dict  *session.Dictionary
	truth *workload.Truth
}

var shared *corpus

func buildCorpus(t *testing.T) *corpus {
	t.Helper()
	if shared != nil {
		return shared
	}
	cfg := workload.DefaultConfig(day)
	cfg.Users = 150
	cfg.LoggedOutSessions = 300
	evs, truth := workload.New(cfg).Generate()
	fs := hdfs.New(0)
	if err := workload.WriteWarehouse(fs, evs); err != nil {
		t.Fatal(err)
	}
	dict, _, _, err := session.BuildDay(fs, day, 0)
	if err != nil {
		t.Fatal(err)
	}
	shared = &corpus{fs: fs, dict: dict, truth: truth}
	return shared
}

func TestMatcherConstructors(t *testing.T) {
	m, err := MatcherFromPattern("*:profile_click")
	if err != nil {
		t.Fatal(err)
	}
	if !m("web:home:timeline:stream:avatar:profile_click") || m("web:home:::page:open") {
		t.Fatal("pattern matcher wrong")
	}
	r, err := MatcherFromRegexp(`^web:.*:click$`)
	if err != nil {
		t.Fatal(err)
	}
	if !r("web:home:trends:module:trend:click") || r("iphone:home:trends:module:trend:click") {
		t.Fatal("regexp matcher wrong")
	}
	if _, err := MatcherFromPattern("BAD PATTERN"); err == nil {
		t.Fatal("bad pattern accepted")
	}
	if _, err := MatcherFromRegexp("(unclosed"); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

// TestCountMatchesGroundTruth: the CountClientEvents UDF over sequences
// recovers the generator's exact planted counts.
func TestCountMatchesGroundTruth(t *testing.T) {
	c := buildCorpus(t)
	m, err := MatcherFromRegexp(`^[a-z_]+:home:who_to_follow:module:user:impression$`)
	if err != nil {
		t.Fatal(err)
	}
	j := dataflow.NewJob("count-seq", c.fs)
	rep, err := CountSequencesDay(j, day, c.dict, m)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Events != c.truth.FeatureImpressions[workload.FeatureWhoToFollow] {
		t.Fatalf("events = %d, truth = %d", rep.Events, c.truth.FeatureImpressions[workload.FeatureWhoToFollow])
	}
	if rep.TotalSessions != c.truth.Sessions {
		t.Fatalf("total sessions = %d, truth = %d", rep.TotalSessions, c.truth.Sessions)
	}
	if rep.Sessions == 0 || rep.Sessions > rep.Events {
		t.Fatalf("sessions with = %d", rep.Sessions)
	}
}

// TestRawAndSequencePathsAgree: both query paths return identical answers;
// only their costs differ (E2).
func TestRawAndSequencePathsAgree(t *testing.T) {
	c := buildCorpus(t)
	m, err := MatcherFromPattern("*:profile_click")
	if err != nil {
		t.Fatal(err)
	}
	seqJob := dataflow.NewJob("seq", c.fs)
	seqRep, err := CountSequencesDay(seqJob, day, c.dict, m)
	if err != nil {
		t.Fatal(err)
	}
	rawJob := dataflow.NewJob("raw", c.fs)
	rawRep, err := CountRawDay(rawJob, day, m)
	if err != nil {
		t.Fatal(err)
	}
	if seqRep != rawRep {
		t.Fatalf("answers differ: seq %+v raw %+v", seqRep, rawRep)
	}
	ss, rs := seqJob.Stats(), rawJob.Stats()
	if ss.BytesRead >= rs.BytesRead || ss.MapTasks >= rs.MapTasks {
		t.Fatalf("sequence path not cheaper: seq %+v raw %+v", ss, rs)
	}
	if ss.ShuffleBytes >= rs.ShuffleBytes && rs.ShuffleBytes > 0 {
		t.Fatalf("sequence path shuffled more: %d vs %d", ss.ShuffleBytes, rs.ShuffleBytes)
	}
}

func TestCounterExpansion(t *testing.T) {
	c := buildCorpus(t)
	m, _ := MatcherFromPattern("web:home")
	counter := NewCounter(c.dict, m)
	if counter.NumSymbols() == 0 {
		t.Fatal("pattern expanded to zero symbols")
	}
	// A matcher that hits nothing counts nothing.
	none := NewCounter(c.dict, func(string) bool { return false })
	if none.Count("anything") != 0 || none.Contains("anything") {
		t.Fatal("empty counter matched")
	}
}

// TestFunnelRecoversPlantedDropoff reproduces the §5.3 worked example: the
// per-stage counts are monotone non-increasing and match the generator's
// planted continuation rates.
func TestFunnelRecoversPlantedDropoff(t *testing.T) {
	c := buildCorpus(t)
	stages := make([]Matcher, 5)
	for i := 0; i < 5; i++ {
		suffix := events.MustParseName(workload.FunnelStages("web")[i])
		suffix.Client = ""
		s := suffix
		stages[i] = func(name string) bool {
			n, err := events.ParseName(name)
			if err != nil {
				return false
			}
			n.Client = ""
			return n == s
		}
	}
	f := NewFunnel(c.dict, stages...)
	j := dataflow.NewJob("funnel", c.fs)
	rep, err := FunnelSequencesDay(j, day, f)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Examined != c.truth.Sessions {
		t.Fatalf("examined %d sessions, truth %d", rep.Examined, c.truth.Sessions)
	}
	for i := range rep.Completed {
		if rep.Completed[i] != c.truth.FunnelStage[i] {
			t.Fatalf("stage %d = %d, truth %d", i, rep.Completed[i], c.truth.FunnelStage[i])
		}
		if i > 0 && rep.Completed[i] > rep.Completed[i-1] {
			t.Fatalf("funnel not monotone: %v", rep.Completed)
		}
	}
	ab := rep.Abandonment()
	if len(ab) != 4 {
		t.Fatalf("abandonment = %v", ab)
	}
}

// TestFunnelScannerMatchesRegexp: the linear Depth scanner agrees with the
// paper's regular-expression translation on every session.
func TestFunnelScannerMatchesRegexp(t *testing.T) {
	c := buildCorpus(t)
	stages := []Matcher{
		func(n string) bool { return events.MustParsePattern("*:page:open").MatchesString(n) },
		func(n string) bool { return events.MustParsePattern("*:impression").MatchesString(n) },
		func(n string) bool { return events.MustParsePattern("*:click").MatchesString(n) },
	}
	f := NewFunnel(c.dict, stages...)
	res := make([]*regexpMatcher, f.NumStages()+1)
	for k := 1; k <= f.NumStages(); k++ {
		re, err := f.Regexp(k)
		if err != nil {
			t.Fatal(err)
		}
		res[k] = &regexpMatcher{re}
	}
	n := 0
	err := session.ScanDay(c.fs, day, func(r *session.Record) error {
		depth := f.Depth(r.Sequence)
		for k := 1; k <= f.NumStages(); k++ {
			if got := res[k].re.MatchString(r.Sequence); got != (depth >= k) {
				t.Fatalf("sequence %q: regexp k=%d says %v, scanner depth %d", r.Sequence, k, got, depth)
			}
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no sessions scanned")
	}
}

type regexpMatcher struct {
	re interface{ MatchString(string) bool }
}

// TestFunnelRawAgrees: the raw-logs funnel produces the same report.
func TestFunnelRawAgrees(t *testing.T) {
	c := buildCorpus(t)
	stageNames := workload.FunnelStages("web")
	seqStages := make([]Matcher, len(stageNames))
	rawStages := make([]Matcher, len(stageNames))
	for i, n := range stageNames {
		name := n
		seqStages[i] = func(s string) bool { return s == name }
		rawStages[i] = func(s string) bool { return s == name }
	}
	f := NewFunnel(c.dict, seqStages...)
	seqJob := dataflow.NewJob("f-seq", c.fs)
	seqRep, err := FunnelSequencesDay(seqJob, day, f)
	if err != nil {
		t.Fatal(err)
	}
	rawJob := dataflow.NewJob("f-raw", c.fs)
	rawRep, err := FunnelRawDay(rawJob, day, rawStages)
	if err != nil {
		t.Fatal(err)
	}
	if seqRep.Examined != rawRep.Examined {
		t.Fatalf("examined: seq %d raw %d", seqRep.Examined, rawRep.Examined)
	}
	for i := range seqRep.Completed {
		if seqRep.Completed[i] != rawRep.Completed[i] {
			t.Fatalf("stage %d: seq %d raw %d", i, seqRep.Completed[i], rawRep.Completed[i])
		}
	}
	if seqJob.Stats().BytesRead >= rawJob.Stats().BytesRead {
		t.Fatal("sequence funnel read more bytes than raw")
	}
}

func TestUniqueUsersPerStage(t *testing.T) {
	c := buildCorpus(t)
	// All funnel users are logged out (user id 0), so distinct users per
	// stage is 1 where any session completed, 0 otherwise.
	f := NewFunnelFromNames(c.dict, workload.FunnelStages("web")...)
	j := dataflow.NewJob("uu", c.fs)
	users, err := UniqueUsersPerStage(j, day, f)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range users {
		if c.truth.FunnelStage[i] > 0 && u == 0 {
			t.Fatalf("stage %d: no users despite %d sessions", i, c.truth.FunnelStage[i])
		}
		if u > 1 {
			t.Fatalf("stage %d: %d distinct users for logged-out funnel", i, u)
		}
	}
}

// TestCTRRecovery is experiment E7: measured CTR matches planted ground
// truth exactly (counts) and approximately (rates vs config).
func TestCTRRecovery(t *testing.T) {
	c := buildCorpus(t)
	cfg := workload.DefaultConfig(day)
	for _, feature := range []string{workload.FeatureWhoToFollow, workload.FeatureSearch, workload.FeatureTrends} {
		imp := workload.FeatureImpressionName("web", feature)
		impSuffix := imp[len("web"):]
		clk := workload.FeatureClickName("web", feature)
		clkSuffix := clk[len("web"):]
		impM := func(n string) bool { return len(n) > len(impSuffix) && n[len(n)-len(impSuffix):] == impSuffix }
		clkM := func(n string) bool { return len(n) > len(clkSuffix) && n[len(n)-len(clkSuffix):] == clkSuffix }
		rep, err := RateOverSequences(c.fs, day, c.dict, impM, clkM)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Impressions != c.truth.FeatureImpressions[feature] || rep.Actions != c.truth.FeatureClicks[feature] {
			t.Fatalf("%s: measured %d/%d, truth %d/%d", feature, rep.Actions, rep.Impressions,
				c.truth.FeatureClicks[feature], c.truth.FeatureImpressions[feature])
		}
		if math.Abs(rep.Rate()-cfg.CTR[feature]) > 0.06 {
			t.Fatalf("%s: rate %.3f, planted %.3f", feature, rep.Rate(), cfg.CTR[feature])
		}
	}
}

// TestRollupConservation is experiment E5: every rollup level's counts sum
// to the total event count, and the example top-level metric matches.
func TestRollupConservation(t *testing.T) {
	c := buildCorpus(t)
	j := dataflow.NewJob("rollup", c.fs)
	rollups, err := Rollups(j, day)
	if err != nil {
		t.Fatal(err)
	}
	perLevel := make(map[events.RollupLevel]int64)
	for k, n := range rollups {
		perLevel[k.Level] += n
	}
	for lvl := 0; lvl < events.NumRollupLevels; lvl++ {
		if perLevel[events.RollupLevel(lvl)] != c.truth.Events {
			t.Fatalf("level %d sums to %d, want %d", lvl, perLevel[events.RollupLevel(lvl)], c.truth.Events)
		}
	}
	// Level-4 profile clicks across web equal the planted collocation hits
	// for web plus any web profile clicks (all come from the collocation).
	total := RollupTotal(rollups, 4, "web:*:*:*:*:profile_click")
	if total == 0 {
		t.Fatal("no web profile clicks in rollups")
	}
}

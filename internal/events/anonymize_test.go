package events

import (
	"testing"
	"testing/quick"
)

func TestAnonymizerStability(t *testing.T) {
	a := NewAnonymizer([]byte("key-2012"))
	if a.UserID(42) != a.UserID(42) {
		t.Fatal("user pseudonym unstable")
	}
	if a.UserID(42) == 42 {
		t.Fatal("user id not pseudonymized")
	}
	if a.UserID(0) != 0 {
		t.Fatal("logged-out sentinel must survive")
	}
	if a.SessionID("cookie") != a.SessionID("cookie") {
		t.Fatal("session pseudonym unstable")
	}
	if a.SessionID("cookie") == "cookie" {
		t.Fatal("session id not pseudonymized")
	}
}

func TestAnonymizerKeysUnlink(t *testing.T) {
	a := NewAnonymizer([]byte("era-1"))
	b := NewAnonymizer([]byte("era-2"))
	if a.UserID(42) == b.UserID(42) {
		t.Fatal("different keys produced linkable pseudonyms")
	}
}

func TestAnonymizerIP(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	if got := a.IP("10.12.34.56"); got != "10.12.34.0" {
		t.Fatalf("IP = %q", got)
	}
	if got := a.IP("garbage"); got != "" {
		t.Fatalf("IP(garbage) = %q", got)
	}
}

func TestAnonymizerApply(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	e := &ClientEvent{
		Name:      MustParseName("web:home:::tweet:impression"),
		UserID:    7,
		SessionID: "ck",
		IP:        "10.1.2.3",
		Details:   map[string]string{"request_id": "secret", "ua": "agent", "rank": "3"},
	}
	a.Apply(e)
	if e.UserID == 7 || e.SessionID == "ck" || e.IP != "10.1.2.0" {
		t.Fatalf("apply left identifiers: %+v", e)
	}
	if _, ok := e.Details["request_id"]; ok {
		t.Fatal("request_id not dropped")
	}
	if e.Details["rank"] != "3" {
		t.Fatal("benign detail dropped")
	}
}

// TestAnonymizedJoinability: the property that makes the policy usable —
// two events of the same user still join after anonymization, different
// users still differ.
func TestAnonymizedJoinability(t *testing.T) {
	a := NewAnonymizer([]byte("k"))
	f := func(u1, u2 int64) bool {
		if u1 == 0 || u2 == 0 {
			return true
		}
		p1a, p1b, p2 := a.UserID(u1), a.UserID(u1), a.UserID(u2)
		if p1a != p1b {
			return false
		}
		if u1 != u2 && p1a == p2 {
			return false // collision would merge users (astronomically unlikely)
		}
		if p1a < 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package events implements the paper's core contribution: the unified
// "client events" log format (§3.2).
//
// Every loggable user or application action is named by a six-level
// hierarchical event name — client, page, section, component, element,
// action (Table 1) — and carried in a Thrift message with fixed semantics
// for the fields every analysis needs: initiator, user id, session id, IP
// address, timestamp, and free-form key-value details (Table 2).
//
// The hierarchical namespace makes events self-documenting and sliceable
// with simple patterns: web:home:mentions:* selects every action on the
// mentions timeline of the web client, *:profile_click selects profile
// clicks across all clients.
package events

import (
	"fmt"
	"strings"

	"unilog/internal/thrift"
)

// NumComponents is the depth of the event-name hierarchy (Table 1).
const NumComponents = 6

// Component indices into an event name, in hierarchy order.
const (
	CompClient = iota
	CompPage
	CompSection
	CompComponent
	CompElement
	CompAction
)

// ComponentNames gives the human name of each level, per Table 1.
var ComponentNames = [NumComponents]string{
	"client", "page", "section", "component", "element", "action",
}

// EventName is a six-level hierarchical event identifier, e.g.
// web:home:mentions:stream:avatar:profile_click. Interior components may be
// empty ("a page without sections"), but client and action are mandatory.
type EventName struct {
	Client    string
	Page      string
	Section   string
	Component string
	Element   string
	Action    string
}

// ParseName parses a colon-separated six-component event name. It returns
// an error unless the name has exactly six components and validates.
func ParseName(s string) (EventName, error) {
	parts := strings.Split(s, ":")
	if len(parts) != NumComponents {
		return EventName{}, fmt.Errorf("events: name %q has %d components, want %d", s, len(parts), NumComponents)
	}
	n := EventName{
		Client:    parts[CompClient],
		Page:      parts[CompPage],
		Section:   parts[CompSection],
		Component: parts[CompComponent],
		Element:   parts[CompElement],
		Action:    parts[CompAction],
	}
	if err := n.Validate(); err != nil {
		return EventName{}, err
	}
	return n, nil
}

// MustParseName is ParseName for statically known names; it panics on error.
func MustParseName(s string) EventName {
	n, err := ParseName(s)
	if err != nil {
		panic(err)
	}
	return n
}

// String returns the canonical colon-joined form.
func (n EventName) String() string {
	return n.Client + ":" + n.Page + ":" + n.Section + ":" + n.Component + ":" + n.Element + ":" + n.Action
}

// At returns the i-th component (CompClient..CompAction).
func (n EventName) At(i int) string {
	switch i {
	case CompClient:
		return n.Client
	case CompPage:
		return n.Page
	case CompSection:
		return n.Section
	case CompComponent:
		return n.Component
	case CompElement:
		return n.Element
	case CompAction:
		return n.Action
	}
	panic(fmt.Sprintf("events: component index %d out of range", i))
}

// validComponent reports whether a single component uses only the blessed
// character set. The paper imposed "consistent, lowercased naming" to kill
// the camelCase/snake_case chaos of application-specific logging (§3.1);
// we enforce it mechanically.
func validComponent(c string) bool {
	for i := 0; i < len(c); i++ {
		b := c[i]
		switch {
		case b >= 'a' && b <= 'z':
		case b >= '0' && b <= '9':
		case b == '_' || b == '-':
		default:
			return false
		}
	}
	return true
}

// Validate enforces naming rules: client and action are non-empty; every
// component is lowercase alphanumeric with underscores or dashes.
func (n EventName) Validate() error {
	if n.Client == "" {
		return fmt.Errorf("events: %q: client component must not be empty", n.String())
	}
	if n.Action == "" {
		return fmt.Errorf("events: %q: action component must not be empty", n.String())
	}
	for i := 0; i < NumComponents; i++ {
		if c := n.At(i); !validComponent(c) {
			return fmt.Errorf("events: %q: invalid %s component %q (must be lowercase [a-z0-9_-])",
				n.String(), ComponentNames[i], c)
		}
	}
	return nil
}

// RollupLevel selects one of the paper's five automatic aggregation schemas
// (§3.2). Level 0 keeps the full name; each higher level wildcards one more
// interior component, ending with (client, *, *, *, *, action).
type RollupLevel int

// NumRollupLevels is the count of aggregation schemas in §3.2.
const NumRollupLevels = 5

// Rollup returns the name with the components masked by the given level
// replaced by "*". The masking order follows the paper exactly:
//
//	level 0: (client, page, section, component, element, action)
//	level 1: (client, page, section, component, *, action)
//	level 2: (client, page, section, *, *, action)
//	level 3: (client, page, *, *, *, action)
//	level 4: (client, *, *, *, *, action)
func (n EventName) Rollup(level RollupLevel) EventName {
	if level <= 0 {
		return n
	}
	out := n
	if level >= 1 {
		out.Element = "*"
	}
	if level >= 2 {
		out.Component = "*"
	}
	if level >= 3 {
		out.Section = "*"
	}
	if level >= 4 {
		out.Page = "*"
	}
	return out
}

// Pattern matches event names with per-component wildcards.
//
// A six-component pattern matches componentwise, with "*" matching any
// single component. Shorter patterns anchor: a leading "*" anchors the
// remaining parts at the tail (*:profile_click — profile clicks across all
// clients), otherwise the parts anchor at the head with the tail
// unconstrained (web:home:mentions:* — everything on the web mentions
// timeline).
type Pattern struct {
	raw   string
	parts []string
	// tailAnchored is true for patterns of the form *:<suffix...>.
	tailAnchored bool
}

// ParsePattern compiles a wildcard pattern.
func ParsePattern(s string) (Pattern, error) {
	if s == "" {
		return Pattern{}, fmt.Errorf("events: empty pattern")
	}
	parts := strings.Split(s, ":")
	if len(parts) > NumComponents {
		return Pattern{}, fmt.Errorf("events: pattern %q has %d components, max %d", s, len(parts), NumComponents)
	}
	for _, p := range parts {
		if p != "*" && !validComponent(p) {
			return Pattern{}, fmt.Errorf("events: pattern %q: invalid component %q", s, p)
		}
	}
	p := Pattern{raw: s, parts: parts}
	if len(parts) < NumComponents && parts[0] == "*" {
		p.tailAnchored = true
		p.parts = parts[1:]
	}
	return p, nil
}

// MustParsePattern is ParsePattern for statically known patterns.
func MustParsePattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// String returns the pattern source text.
func (p Pattern) String() string { return p.raw }

// Matches reports whether the pattern matches the event name.
func (p Pattern) Matches(n EventName) bool {
	if p.tailAnchored {
		off := NumComponents - len(p.parts)
		for i, part := range p.parts {
			if part != "*" && part != n.At(off+i) {
				return false
			}
		}
		return true
	}
	for i, part := range p.parts {
		if part != "*" && part != n.At(i) {
			return false
		}
	}
	return true
}

// PrunePrefix returns the longest literal head of the pattern as a
// colon-joined string prefix: every name the pattern matches starts with
// it, so a scan can skip any chunk whose name range excludes the prefix
// and still apply the exact match to what it reads. Tail-anchored
// patterns (*:suffix) and patterns opening with a wildcard have no usable
// head; ok is false and no name-based pruning is possible.
func (p Pattern) PrunePrefix() (prefix string, ok bool) {
	if p.tailAnchored {
		return "", false
	}
	n := 0
	for n < len(p.parts) && p.parts[n] != "*" {
		n++
	}
	if n == 0 {
		return "", false
	}
	return strings.Join(p.parts[:n], ":"), true
}

// MatchesString parses s and reports whether the pattern matches; malformed
// names never match.
func (p Pattern) MatchesString(s string) bool {
	n, err := ParseName(s)
	if err != nil {
		return false
	}
	return p.Matches(n)
}

// Initiator records who triggered the event: the client or server side, and
// whether a user action or the application itself did it (Table 2 —
// "{client, server} x {user, app}"). A timeline polling for new tweets
// without user intervention is a client/app event.
type Initiator int8

// Initiator values.
const (
	InitiatorClientUser Initiator = iota
	InitiatorClientApp
	InitiatorServerUser
	InitiatorServerApp
)

// String names the initiator quadrant.
func (i Initiator) String() string {
	switch i {
	case InitiatorClientUser:
		return "client:user"
	case InitiatorClientApp:
		return "client:app"
	case InitiatorServerUser:
		return "server:user"
	case InitiatorServerApp:
		return "server:app"
	}
	return fmt.Sprintf("initiator(%d)", int8(i))
}

// ClientEvent is the unified log message (Table 2). Every event carries
// user id, session id, and IP with identical semantics across all clients,
// so "a simple group-by suffices to accurately reconstruct user sessions".
type ClientEvent struct {
	Initiator Initiator
	Name      EventName
	// UserID is 0 for logged-out users.
	UserID int64
	// SessionID comes from a browser cookie or equivalent client identifier.
	SessionID string
	IP        string
	// Timestamp is milliseconds since the Unix epoch.
	Timestamp int64
	// Details holds event-specific key-value pairs, extensible by teams
	// without central coordination (e.g. the id of the profile clicked on,
	// or a search result's URL and rank).
	Details map[string]string
}

// LoggedIn reports whether the event was produced by an authenticated user.
func (e *ClientEvent) LoggedIn() bool { return e.UserID != 0 }

// Thrift field ids for ClientEvent. Ids are part of the wire contract and
// must never be reused.
const (
	fieldInitiator = 1
	fieldEventName = 2
	fieldUserID    = 3
	fieldSessionID = 4
	fieldIP        = 5
	fieldTimestamp = 6
	fieldDetails   = 7
)

// Encode writes the event as a Thrift struct.
func (e *ClientEvent) Encode(enc thrift.Encoder) {
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.BYTE, fieldInitiator)
	enc.WriteI8(int8(e.Initiator))
	enc.WriteFieldBegin(thrift.STRING, fieldEventName)
	enc.WriteString(e.Name.String())
	enc.WriteFieldBegin(thrift.I64, fieldUserID)
	enc.WriteI64(e.UserID)
	enc.WriteFieldBegin(thrift.STRING, fieldSessionID)
	enc.WriteString(e.SessionID)
	enc.WriteFieldBegin(thrift.STRING, fieldIP)
	enc.WriteString(e.IP)
	enc.WriteFieldBegin(thrift.I64, fieldTimestamp)
	enc.WriteI64(e.Timestamp)
	if len(e.Details) > 0 {
		enc.WriteFieldBegin(thrift.MAP, fieldDetails)
		enc.WriteMapBegin(thrift.STRING, thrift.STRING, len(e.Details))
		for k, v := range e.Details {
			enc.WriteString(k)
			enc.WriteString(v)
		}
	}
	enc.WriteFieldStop()
	enc.WriteStructEnd()
}

// Decode reads the event from a Thrift struct, skipping unknown fields so
// newer producers remain readable.
func (e *ClientEvent) Decode(dec thrift.Decoder) error {
	if err := dec.ReadStructBegin(); err != nil {
		return err
	}
	for {
		ft, id, err := dec.ReadFieldBegin()
		if err != nil {
			return err
		}
		if ft == thrift.STOP {
			break
		}
		switch id {
		case fieldInitiator:
			var v int8
			if v, err = dec.ReadI8(); err == nil {
				e.Initiator = Initiator(v)
			}
		case fieldEventName:
			var s string
			if s, err = dec.ReadString(); err == nil {
				e.Name, err = ParseName(s)
			}
		case fieldUserID:
			e.UserID, err = dec.ReadI64()
		case fieldSessionID:
			e.SessionID, err = dec.ReadString()
		case fieldIP:
			e.IP, err = dec.ReadString()
		case fieldTimestamp:
			e.Timestamp, err = dec.ReadI64()
		case fieldDetails:
			var n int
			if _, _, n, err = dec.ReadMapBegin(); err == nil {
				e.Details = make(map[string]string, n)
				for i := 0; i < n; i++ {
					var k, v string
					if k, err = dec.ReadString(); err != nil {
						return err
					}
					if v, err = dec.ReadString(); err != nil {
						return err
					}
					e.Details[k] = v
				}
			}
		default:
			err = dec.Skip(ft)
		}
		if err != nil {
			return err
		}
	}
	return dec.ReadStructEnd()
}

// Marshal serializes the event with the compact protocol, the encoding used
// for client-event log files.
func (e *ClientEvent) Marshal() []byte { return thrift.EncodeCompact(e) }

// Unmarshal deserializes a compact-protocol event.
func (e *ClientEvent) Unmarshal(data []byte) error { return thrift.DecodeCompact(data, e) }

// Category is the Scribe category carrying all unified client events — the
// "single location for all client event messages" of §3.2.
const Category = "client_events"

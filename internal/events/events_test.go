package events

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"unilog/internal/thrift"
)

// The canonical example from §3.2 of the paper.
const paperExample = "web:home:mentions:stream:avatar:profile_click"

// TestEventNameComponents reproduces Table 1: the six-level decomposition.
func TestEventNameComponents(t *testing.T) {
	n, err := ParseName(paperExample)
	if err != nil {
		t.Fatal(err)
	}
	want := EventName{
		Client: "web", Page: "home", Section: "mentions",
		Component: "stream", Element: "avatar", Action: "profile_click",
	}
	if n != want {
		t.Fatalf("ParseName = %+v, want %+v", n, want)
	}
	if n.String() != paperExample {
		t.Fatalf("String = %q", n.String())
	}
	for i, want := range []string{"web", "home", "mentions", "stream", "avatar", "profile_click"} {
		if n.At(i) != want {
			t.Errorf("At(%d) = %q, want %q", i, n.At(i), want)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	cases := []string{
		"",                          // empty
		"web:home",                  // too few components
		"a:b:c:d:e:f:g",             // too many
		"Web:home:m:s:a:click",      // uppercase (the dreaded camel_Snake)
		"web:home:m:s:a:",           // empty action
		":home:m:s:a:click",         // empty client
		"web:ho me:m:s:a:click",     // space
		"web:home:m:s:a:click.here", // bad char
	}
	for _, c := range cases {
		if _, err := ParseName(c); err == nil {
			t.Errorf("ParseName(%q) succeeded, want error", c)
		}
	}
}

func TestEmptyInteriorComponents(t *testing.T) {
	// "if a page doesn't have multiple sections, the section component is
	// simply empty" — interior components may be empty.
	n, err := ParseName("web:about::::view")
	if err != nil {
		t.Fatal(err)
	}
	if n.Section != "" || n.Component != "" || n.Element != "" {
		t.Fatalf("interior components = %+v", n)
	}
}

func TestRollupSchemas(t *testing.T) {
	n := MustParseName(paperExample)
	want := []string{
		"web:home:mentions:stream:avatar:profile_click",
		"web:home:mentions:stream:*:profile_click",
		"web:home:mentions:*:*:profile_click",
		"web:home:*:*:*:profile_click",
		"web:*:*:*:*:profile_click",
	}
	for lvl := 0; lvl < NumRollupLevels; lvl++ {
		if got := n.Rollup(RollupLevel(lvl)).String(); got != want[lvl] {
			t.Errorf("Rollup(%d) = %q, want %q", lvl, got, want[lvl])
		}
	}
}

func TestPatternMatching(t *testing.T) {
	n := MustParseName(paperExample)
	iphone := MustParseName("iphone:profile:tweets:stream:avatar:profile_click")
	other := MustParseName("web:home:retweets:stream:avatar:click")

	cases := []struct {
		pattern string
		name    EventName
		want    bool
	}{
		// §3.2: "all actions on the user's home mentions timeline on
		// twitter.com by considering web:home:mentions:*".
		{"web:home:mentions:*", n, true},
		{"web:home:mentions:*", other, false},
		// §3.2: "track profile clicks across all clients ... with
		// *:profile_click".
		{"*:profile_click", n, true},
		{"*:profile_click", iphone, true},
		{"*:profile_click", other, false},
		// Full six-component patterns match componentwise.
		{"web:home:mentions:stream:avatar:profile_click", n, true},
		{"web:home:*:stream:avatar:profile_click", n, true},
		{"web:home:*:stream:avatar:profile_click", other, false},
		// Prefix anchoring.
		{"web", n, true},
		{"iphone", n, false},
		{"web:home", other, true},
		// Tail anchoring with multiple components.
		{"*:avatar:profile_click", n, true},
		{"*:avatar:profile_click", iphone, true},
		{"*:avatar:click", n, false},
	}
	for _, c := range cases {
		p := MustParsePattern(c.pattern)
		if got := p.Matches(c.name); got != c.want {
			t.Errorf("Pattern(%q).Matches(%s) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestPatternErrors(t *testing.T) {
	for _, s := range []string{"", "a:b:c:d:e:f:g", "WEB:*", "we b:*"} {
		if _, err := ParsePattern(s); err == nil {
			t.Errorf("ParsePattern(%q) succeeded", s)
		}
	}
}

func TestMatchesString(t *testing.T) {
	p := MustParsePattern("*:profile_click")
	if !p.MatchesString(paperExample) {
		t.Fatal("MatchesString(paperExample) = false")
	}
	if p.MatchesString("not-a-name") {
		t.Fatal("MatchesString(garbage) = true")
	}
}

// TestClientEventRoundTrip reproduces Table 2: the client event structure
// survives both Thrift protocols.
func TestClientEventRoundTrip(t *testing.T) {
	in := &ClientEvent{
		Initiator: InitiatorClientUser,
		Name:      MustParseName(paperExample),
		UserID:    12345,
		SessionID: "c0ffee-cookie",
		IP:        "10.1.2.3",
		Timestamp: 1345536000123,
		Details:   map[string]string{"profile_id": "678", "rank": "3"},
	}
	var fromCompact ClientEvent
	if err := fromCompact.Unmarshal(in.Marshal()); err != nil {
		t.Fatal(err)
	}
	assertEqualEvent(t, in, &fromCompact)

	var fromBinary ClientEvent
	if err := thrift.DecodeBinary(thrift.EncodeBinary(in), &fromBinary); err != nil {
		t.Fatal(err)
	}
	assertEqualEvent(t, in, &fromBinary)
}

func assertEqualEvent(t *testing.T, want, got *ClientEvent) {
	t.Helper()
	if got.Initiator != want.Initiator || got.Name != want.Name || got.UserID != want.UserID ||
		got.SessionID != want.SessionID || got.IP != want.IP || got.Timestamp != want.Timestamp {
		t.Fatalf("scalar fields: got %+v, want %+v", got, want)
	}
	if len(got.Details) != len(want.Details) {
		t.Fatalf("details: got %v, want %v", got.Details, want.Details)
	}
	for k, v := range want.Details {
		if got.Details[k] != v {
			t.Fatalf("details[%q] = %q, want %q", k, got.Details[k], v)
		}
	}
}

func TestLoggedIn(t *testing.T) {
	e := &ClientEvent{UserID: 7}
	if !e.LoggedIn() {
		t.Fatal("UserID 7 not logged in")
	}
	e.UserID = 0
	if e.LoggedIn() {
		t.Fatal("UserID 0 logged in")
	}
}

func TestInitiatorString(t *testing.T) {
	want := map[Initiator]string{
		InitiatorClientUser: "client:user",
		InitiatorClientApp:  "client:app",
		InitiatorServerUser: "server:user",
		InitiatorServerApp:  "server:app",
	}
	for i, s := range want {
		if i.String() != s {
			t.Errorf("Initiator(%d).String() = %q, want %q", i, i.String(), s)
		}
	}
}

// TestPatternPrefixProperty: a prefix pattern built from the first k
// components of a name always matches that name.
func TestPatternPrefixProperty(t *testing.T) {
	f := func(a, b, c uint8, k uint8) bool {
		n := EventName{
			Client:    fmt.Sprintf("client%d", a%4),
			Page:      fmt.Sprintf("page%d", b%4),
			Section:   fmt.Sprintf("section%d", c%4),
			Component: "comp",
			Element:   "elem",
			Action:    "act",
		}
		kk := int(k%NumComponents) + 1
		parts := make([]string, kk)
		for i := 0; i < kk; i++ {
			parts[i] = n.At(i)
		}
		p, err := ParsePattern(strings.Join(parts, ":"))
		if err != nil {
			return false
		}
		return p.Matches(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripProperty: events with arbitrary scalar payloads survive the
// compact codec.
func TestRoundTripProperty(t *testing.T) {
	f := func(user int64, ts int64, sess string, ip string, init uint8) bool {
		in := &ClientEvent{
			Initiator: Initiator(init % 4),
			Name:      MustParseName(paperExample),
			UserID:    user,
			SessionID: sess,
			IP:        ip,
			Timestamp: ts,
		}
		var out ClientEvent
		if err := out.Unmarshal(in.Marshal()); err != nil {
			return false
		}
		return out.UserID == user && out.Timestamp == ts && out.SessionID == sess &&
			out.IP == ip && out.Initiator == in.Initiator
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsBadName(t *testing.T) {
	in := &ClientEvent{Name: EventName{Client: "web", Action: "click"}}
	data := in.Marshal()
	// Corrupt: encode an event whose name string is not parseable by
	// writing a raw struct with an invalid name.
	enc := thrift.NewCompactEncoder()
	enc.WriteStructBegin()
	enc.WriteFieldBegin(thrift.STRING, 2)
	enc.WriteString("NOT A NAME")
	enc.WriteFieldStop()
	enc.WriteStructEnd()
	var out ClientEvent
	if err := out.Unmarshal(enc.Bytes()); err == nil {
		t.Fatal("decode of invalid event name succeeded")
	}
	// The valid message still decodes.
	if err := out.Unmarshal(data); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrorMentionsComponent(t *testing.T) {
	n := EventName{Client: "web", Page: "Home", Action: "click"}
	err := n.Validate()
	if err == nil || !strings.Contains(err.Error(), "page") {
		t.Fatalf("err = %v, want mention of page component", err)
	}
	var invalid error = err
	if errors.Is(invalid, nil) {
		t.Fatal("unreachable")
	}
}

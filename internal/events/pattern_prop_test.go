package events

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// patternToRegexp is an independent reference implementation: translate a
// wildcard pattern into a regexp over the colon-joined name.
func patternToRegexp(t *testing.T, pattern string) *regexp.Regexp {
	t.Helper()
	parts := strings.Split(pattern, ":")
	const comp = `[a-z0-9_-]*`
	// Normalize to exactly six components: tail-anchored patterns pad with
	// wildcards on the left, prefix patterns on the right.
	full := make([]string, 0, NumComponents)
	if len(parts) < NumComponents && parts[0] == "*" {
		rest := parts[1:]
		for i := 0; i < NumComponents-len(rest); i++ {
			full = append(full, "*")
		}
		full = append(full, rest...)
	} else {
		full = append(full, parts...)
		for len(full) < NumComponents {
			full = append(full, "*")
		}
	}
	pieces := make([]string, len(full))
	for i, p := range full {
		if p == "*" {
			pieces[i] = comp
		} else {
			pieces[i] = regexp.QuoteMeta(p)
		}
	}
	re, err := regexp.Compile("^" + strings.Join(pieces, ":") + "$")
	if err != nil {
		t.Fatalf("reference regexp for %q: %v", pattern, err)
	}
	return re
}

// TestPatternMatchesReferenceRegexp cross-checks Pattern.Matches against an
// independent regexp translation over randomized names and patterns.
func TestPatternMatchesReferenceRegexp(t *testing.T) {
	rng := rand.New(rand.NewSource(20120821))
	vocab := []string{"web", "iphone", "home", "search", "stream", "tweet", "avatar", "click", "impression", "open", "x1", "y_2", ""}
	randComp := func(canBeEmpty bool) string {
		for {
			v := vocab[rng.Intn(len(vocab))]
			if v != "" || canBeEmpty {
				return v
			}
		}
	}
	randName := func() EventName {
		return EventName{
			Client:    randComp(false),
			Page:      randComp(true),
			Section:   randComp(true),
			Component: randComp(true),
			Element:   randComp(true),
			Action:    randComp(false),
		}
	}
	for trial := 0; trial < 3000; trial++ {
		n := randName()
		// Random pattern: random depth, random tail anchoring, components
		// drawn from the name (to get hits) or vocab (to get misses).
		depth := 1 + rng.Intn(NumComponents)
		parts := make([]string, 0, depth)
		tail := depth < NumComponents && rng.Intn(2) == 0
		if tail {
			parts = append(parts, "*")
		}
		for len(parts) < depth {
			switch rng.Intn(3) {
			case 0:
				parts = append(parts, "*")
			case 1:
				parts = append(parts, n.At(rng.Intn(NumComponents)))
			default:
				parts = append(parts, randComp(false))
			}
		}
		// Pattern components may not be empty per ParsePattern; replace.
		for i, p := range parts {
			if p == "" {
				parts[i] = "*"
			}
		}
		src := strings.Join(parts, ":")
		p, err := ParsePattern(src)
		if err != nil {
			continue // e.g. tail '*' at depth 6; skip invalid combos
		}
		got := p.Matches(n)
		want := patternToRegexp(t, src).MatchString(n.String())
		if got != want {
			t.Fatalf("trial %d: Pattern(%q).Matches(%s) = %v, reference = %v", trial, src, n, got, want)
		}
	}
}

// TestRollupIdempotent: rolling up an already-rolled-up name at the same
// level is a fixed point, and levels nest.
func TestRollupIdempotent(t *testing.T) {
	n := MustParseName("web:home:mentions:stream:avatar:profile_click")
	for lvl := 0; lvl < NumRollupLevels; lvl++ {
		r := n.Rollup(RollupLevel(lvl))
		if again := r.Rollup(RollupLevel(lvl)); again != r {
			t.Fatalf("level %d not idempotent: %v -> %v", lvl, r, again)
		}
		// Rolling a level-k name to level k+1 equals rolling the original.
		if lvl+1 < NumRollupLevels {
			if r.Rollup(RollupLevel(lvl+1)) != n.Rollup(RollupLevel(lvl+1)) {
				t.Fatalf("levels don't nest at %d", lvl)
			}
		}
		// Client and action always survive.
		if r.Client != n.Client || r.Action != n.Action {
			t.Fatalf("level %d destroyed client/action: %v", lvl, r)
		}
	}
}

func TestTypeCoverageSmoke(t *testing.T) {
	// Exercise Stringers for coverage and stability.
	for i := 0; i < 6; i++ {
		if s := Initiator(i).String(); s == "" {
			t.Fatalf("Initiator(%d).String() empty", i)
		}
	}
	if fmt.Sprint(MustParsePattern("web:home")) != "web:home" {
		t.Fatal("Pattern.String not source text")
	}
}

package events

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"
)

// Anonymizer applies a consistent anonymization policy to client events.
// §3.2: "standardizing the location and names of these fields allows us to
// implement consistent policies for log anonymization" — precisely because
// every message carries user id, session id, and IP in the same fields,
// one policy covers every event ever logged.
//
// The policy implemented here is the standard one: identifiers are
// pseudonymized with a keyed hash (stable within a key, unlinkable across
// keys), IPs are truncated to /24, and configured detail keys are dropped.
type Anonymizer struct {
	// Key salts the identifier hashes; rotate it to unlink eras.
	Key []byte
	// DropDetails lists event-detail keys to remove entirely.
	DropDetails []string
}

// NewAnonymizer returns an anonymizer with the given key, dropping the
// request-tracing detail keys by default.
func NewAnonymizer(key []byte) *Anonymizer {
	return &Anonymizer{Key: key, DropDetails: []string{"request_id", "ua"}}
}

// hash produces a stable pseudonym for the input under the key.
func (a *Anonymizer) hash(parts ...[]byte) []byte {
	h := sha256.New()
	h.Write(a.Key)
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum(nil)
}

// UserID pseudonymizes a user id; zero (logged out) stays zero.
func (a *Anonymizer) UserID(id int64) int64 {
	if id == 0 {
		return 0
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	sum := a.hash(buf[:])
	// Positive pseudonym, stable under the key.
	return int64(binary.BigEndian.Uint64(sum) &^ (1 << 63))
}

// SessionID pseudonymizes a session cookie.
func (a *Anonymizer) SessionID(id string) string {
	if id == "" {
		return ""
	}
	return hex.EncodeToString(a.hash([]byte(id)))[:16]
}

// IP truncates an IPv4 address to its /24 network.
func (a *Anonymizer) IP(ip string) string {
	i := strings.LastIndexByte(ip, '.')
	if i < 0 {
		return ""
	}
	return ip[:i] + ".0"
}

// Apply anonymizes the event in place. Joinability within the key is
// preserved: the same user or session maps to the same pseudonym, so
// sessionization and funnel analyses still work on anonymized logs.
func (a *Anonymizer) Apply(e *ClientEvent) {
	e.UserID = a.UserID(e.UserID)
	e.SessionID = a.SessionID(e.SessionID)
	e.IP = a.IP(e.IP)
	for _, k := range a.DropDetails {
		delete(e.Details, k)
	}
}

package geo

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	for _, c := range Countries {
		for _, host := range []int64{0, 1, 12345, 1 << 40} {
			ip := IPFor(c, host)
			if got := CountryOf(ip); got != c {
				t.Errorf("CountryOf(IPFor(%q, %d)) = %q via %s", c, host, got, ip)
			}
		}
	}
}

func TestUnknowns(t *testing.T) {
	for _, ip := range []string{"", "nonsense", "300.1.2.3", "9.9.9.9", "99.0.0.1"} {
		if got := CountryOf(ip); got != Unknown {
			t.Errorf("CountryOf(%q) = %q, want unknown", ip, got)
		}
	}
	if ip := IPFor("zz", 5); CountryOf(ip) != Unknown {
		t.Errorf("IPFor(unknown country) = %s resolved", ip)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ci uint8, host int64) bool {
		c := Countries[int(ci)%len(Countries)]
		return CountryOf(IPFor(c, host)) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package geo resolves client IP addresses to countries for the dashboard
// breakdowns of §3.2 ("further broken down by country and logged in/logged
// out status").
//
// The production system used a real geo-IP database; this stand-in keys off
// the first octet using the same table the synthetic workload generator
// allocates IPs from, so resolution is exact for generated traffic and
// "unknown" for anything else.
package geo

import (
	"fmt"
	"strconv"
	"strings"
)

// Unknown is returned for unresolvable addresses.
const Unknown = "unknown"

// Countries lists the country codes traffic is generated from, in prefix
// order: the first octet 10+i maps to Countries[i].
var Countries = []string{"us", "jp", "uk", "br", "in", "de", "id", "mx"}

// firstOctetBase is the first octet assigned to Countries[0].
const firstOctetBase = 10

// CountryOf resolves an IPv4 address to a country code.
func CountryOf(ip string) string {
	dot := strings.IndexByte(ip, '.')
	if dot < 0 {
		return Unknown
	}
	octet, err := strconv.Atoi(ip[:dot])
	if err != nil {
		return Unknown
	}
	i := octet - firstOctetBase
	if i < 0 || i >= len(Countries) {
		return Unknown
	}
	return Countries[i]
}

// IPFor synthesizes an IPv4 address inside the given country's prefix; host
// selects the low bits deterministically.
func IPFor(country string, host int64) string {
	idx := -1
	for i, c := range Countries {
		if c == country {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Sprintf("203.0.113.%d", host%250+1) // TEST-NET-3 for unknowns
	}
	h := uint64(host)
	return fmt.Sprintf("%d.%d.%d.%d", firstOctetBase+idx, (h>>16)%250+1, (h>>8)%250+1, h%250+1)
}

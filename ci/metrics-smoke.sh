#!/usr/bin/env bash
# metrics-smoke: prove the telemetry endpoint works end to end.
#
# Runs unilog-demo with the /debug/unilog endpoint up and a post-run hold,
# scrapes the endpoint while the process is alive, and asserts that the
# JSON parses and that the two load-bearing series are present and nonzero:
#
#   realtime.ingest.events — the streaming path counted events
#   dataflow.spill.bytes   — the budgeted rollup job actually spilled
#
# This is the guard against the classic observability failure mode: the
# metrics endpoint serves 200 OK forever while every counter silently
# reads zero. Run from the repo root; needs curl and jq (present on
# ubuntu-latest).
set -euo pipefail

PORT="${METRICS_SMOKE_PORT:-18472}"
POLL_SECONDS="${METRICS_SMOKE_TIMEOUT:-120}"
URL="http://127.0.0.1:${PORT}/debug/unilog?format=json"

# DEMO_PID is set before the demo starts so the trap is safe under set -u
# on every exit path, including failures before the launch.
DEMO_PID=""
OUT="$(mktemp -d)"
cleanup() {
  if [ -n "$DEMO_PID" ]; then
    kill "$DEMO_PID" 2>/dev/null || true
    wait "$DEMO_PID" 2>/dev/null || true
  fi
  rm -rf "$OUT"
}
trap cleanup EXIT

# Build first, run the binary directly: killing a `go run` wrapper can
# orphan the compiled child, which would then hold the port for the whole
# -hold window and wedge any retry.
echo "metrics-smoke: building unilog-demo"
go build -o "$OUT/unilog-demo" ./cmd/unilog-demo

echo "metrics-smoke: starting unilog-demo with telemetry on :${PORT}"
"$OUT/unilog-demo" -users 20 -live=false \
  -http "127.0.0.1:${PORT}" -hold 90s >"$OUT/demo.log" 2>&1 &
DEMO_PID=$!

# Poll until the endpoint answers with nonzero values for both series, or
# time out with a clear error. The demo takes a few seconds to build its
# day of traffic and run the budgeted rollup; POLL_SECONDS x 1s is
# generous for a cold CI box.
for i in $(seq 1 "$POLL_SECONDS"); do
  if ! kill -0 "$DEMO_PID" 2>/dev/null; then
    echo "metrics-smoke: demo exited before the endpoint was scraped" >&2
    cat "$OUT/demo.log" >&2
    exit 1
  fi
  if curl -fsS "$URL" -o "$OUT/snap.json" 2>/dev/null &&
    jq -e '.series["realtime.ingest.events"] > 0 and .series["dataflow.spill.bytes"] > 0' \
      "$OUT/snap.json" >/dev/null 2>&1; then
    echo "metrics-smoke: OK after ${i}s"
    jq '{ "realtime.ingest.events": .series["realtime.ingest.events"],
          "dataflow.spill.bytes": .series["dataflow.spill.bytes"],
          series_total: (.series | length),
          histograms_total: (.histograms | length) }' "$OUT/snap.json"
    exit 0
  fi
  sleep 1
done

echo "metrics-smoke: timed out after ${POLL_SECONDS}s waiting for nonzero telemetry at $URL" >&2
echo "--- last scrape (if any) ---" >&2
cat "$OUT/snap.json" >&2 2>/dev/null || true
echo "--- demo log ---" >&2
cat "$OUT/demo.log" >&2
exit 1

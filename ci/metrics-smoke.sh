#!/usr/bin/env bash
# metrics-smoke: prove the telemetry endpoint works end to end.
#
# Runs unilog-demo with the /debug/unilog endpoint up and a post-run hold,
# scrapes the endpoint while the process is alive, and asserts that the
# JSON parses and that the two load-bearing series are present and nonzero:
#
#   realtime.ingest.events — the streaming path counted events
#   dataflow.spill.bytes   — the budgeted rollup job actually spilled
#
# This is the guard against the classic observability failure mode: the
# metrics endpoint serves 200 OK forever while every counter silently
# reads zero. Run from the repo root; needs curl and jq (present on
# ubuntu-latest).
set -euo pipefail

PORT="${METRICS_SMOKE_PORT:-18472}"
URL="http://127.0.0.1:${PORT}/debug/unilog?format=json"
OUT="$(mktemp -d)"
trap 'kill "$DEMO_PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

echo "metrics-smoke: starting unilog-demo with telemetry on :${PORT}"
go run ./cmd/unilog-demo -users 20 -live=false \
  -http "127.0.0.1:${PORT}" -hold 90s >"$OUT/demo.log" 2>&1 &
DEMO_PID=$!

# Poll until the endpoint answers with nonzero values for both series, or
# time out. The demo takes a few seconds to build its day of traffic and
# run the budgeted rollup; 120 polls x 1s is generous for a cold CI box.
for i in $(seq 1 120); do
  if ! kill -0 "$DEMO_PID" 2>/dev/null; then
    echo "metrics-smoke: demo exited before the endpoint was scraped" >&2
    cat "$OUT/demo.log" >&2
    exit 1
  fi
  if curl -fsS "$URL" -o "$OUT/snap.json" 2>/dev/null &&
    jq -e '.series["realtime.ingest.events"] > 0 and .series["dataflow.spill.bytes"] > 0' \
      "$OUT/snap.json" >/dev/null 2>&1; then
    echo "metrics-smoke: OK after ${i}s"
    jq '{ "realtime.ingest.events": .series["realtime.ingest.events"],
          "dataflow.spill.bytes": .series["dataflow.spill.bytes"],
          series_total: (.series | length),
          histograms_total: (.histograms | length) }' "$OUT/snap.json"
    exit 0
  fi
  sleep 1
done

echo "metrics-smoke: timed out waiting for nonzero telemetry at $URL" >&2
echo "--- last scrape (if any) ---" >&2
cat "$OUT/snap.json" >&2 2>/dev/null || true
echo "--- demo log ---" >&2
cat "$OUT/demo.log" >&2
exit 1

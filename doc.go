// Package unilog is a from-scratch Go reproduction of "The Unified Logging
// Infrastructure for Data Analytics at Twitter" (Lee, Lin, Liu, Lorek,
// Ryaboy; PVLDB 5(12), 2012).
//
// The repository rebuilds every system the paper describes or depends on —
// Scribe daemons and aggregators, ZooKeeper coordination, staging and
// warehouse HDFS clusters, the hourly log mover, Thrift serialization, the
// unified client-events format, materialized session sequences, the client
// event catalog, a Pig-like dataflow engine with MapReduce cost accounting,
// the Oink workflow manager, Elephant Twin indexing, and the §5 analytics
// applications (counting, funnels, CTR/FTR, n-gram user models,
// collocations) — over a deterministic synthetic workload with planted
// ground truth.
//
// The dataflow engine executes out-of-core with a sort-merge shuffle, the
// way the MapReduce jobs it models do: datasets are lazy pull-based
// iterator pipelines (scans buffer one split at a time;
// Filter/Project/ForEach/FlatMap stream), and the pipeline breakers —
// GroupBy, GroupAll, Join, Distinct, OrderBy — are external operators that
// hash-partition their input and, once dataflow.Job.MemoryBudget is
// exceeded, sort each overflowing buffer on (rendered key, optional order
// column, insertion sequence) and spill it as a sorted run in a CRC-framed
// spill file. The reduce side is a streaming k-way merge over the runs:
// groups arrive in global key order with their tuples pre-ordered
// (GroupByOrdered's secondary sort is what lets sessionization and funnel
// walks consume each group without re-sorting it), joins advance two
// ordered streams in lockstep, and OrderBy is a true external merge sort —
// so peak reduce memory is the run fan-in (one buffered tuple per run),
// never the group count. A zero budget keeps everything in memory (the
// default); either path produces identical relations in identical order,
// asserted by property tests and by benchrunner E16/E17, which roll up,
// sessionize, and sort a synthetic day >= 10x the shared corpus — streamed
// straight from the workload generator into the warehouse writer — under a
// 32 KiB budget. The §3.2 rollup job runs map-combine-reduce: a map-side
// combiner pre-aggregates the five rollup rows per event so only distinct
// partial counts shuffle.
//
// Sealed warehouse hours additionally carry a columnar encoding
// (internal/columnar): SealHour re-encodes each client-events hour into
// fixed-size row-count chunks, one CRC-framed file per column —
// dictionary + varint IDs for the low-cardinality strings (name,
// session_id, ip), zigzag deltas for timestamps, run-length bytes for
// initiator and the derived logged_in flag — plus a per-chunk meta
// record holding row count and min/max zone maps over timestamp and
// name, and an hour-level _col-SEALED marker written after the last
// chunk. Only the marker makes an hour columnar: a seal that dies
// mid-hour leaves its partial chunks invisible (scans keep using the
// row files) and the next seal cleans them up and retries, so a torn
// seal can never silently drop rows. The chunk files are auxiliary
// (underscore-prefixed): row files stay authoritative and row scanners
// never see them, so sealed and unsealed hours coexist in one day. Queries opt in through
// dataflow.Selection — a declarative (columns, name pattern, time
// range) triple — and Job.LoadDirsSelective: a pushdown-aware format
// (columnar.EventsFormat) absorbs the selection, pruning whole chunks
// whose zone maps cannot intersect a head-anchored name prefix or the
// time window (a pruned chunk costs one meta record, never a column
// byte) and decoding only the projected columns' files; any other
// format, and any predicate that is an arbitrary Go closure rather
// than a Selection, falls through to the row files with the same
// filter and projection applied tuple-side — identical relations
// either way, asserted by property tests and by benchrunner E18,
// which requires the pruned+projected path to read >= 5x fewer bytes
// at >= 2x the throughput of the row scan. The log mover seals hours
// as it publishes them (Mover.SealColumnar), so rollups, raw-log
// counting, and funnel walks go columnar the moment an hour lands.
//
// The whole dataflow executes multi-core behind one knob:
// dataflow.Job.Parallelism (default runtime.GOMAXPROCS(0); 1 forces the
// serial engine). Scans decode file splits on a worker pool and a
// reorder buffer delivers them in serial split order; shuffle spills
// flush to disk on a background goroutine off the ingest path; the
// reduce-side merge runs partition-at-a-time across workers, each
// partition's sorted runs merged independently and the per-partition
// streams k-way merged back into one globally key-ordered stream at the
// emit point. Because hash partitions hold disjoint key sets and each
// is reduced in key order, every operator — GroupBy, Join, Distinct,
// Aggregate, OrderBy — produces the byte-identical relation in the
// identical order at any parallelism, under any memory budget; property
// tests assert it for parallelism {1,2,8} x budgets {0, 32 KiB} under
// the race detector, and benchrunner E19 asserts it at day scale plus a
// >= 1.8x rollup speedup at 4 workers on >= 4-CPU machines. The one
// ordering contract a caller can relax is the scan's: Dataset.Unordered
// marks a scan whose consumer is order-insensitive (anything feeding a
// shuffle already is), letting splits deliver as they finish instead of
// through the reorder buffer. Concurrent hour sealing rides the same
// knob — columnar.SealDayParallel / Mover.SealParallelism seal the 24
// hour directories on a worker pool, hours being independent — and the
// pool depths and per-stage busy time report through telemetry
// (dataflow.parallel.workers, dataflow.parallel.*.busy.ns,
// dataflow.parallel.scan.queue.depth, columnar.seal.workers).
//
// Beyond the paper's batch pipeline, internal/realtime adds the §6
// "real-time processing" direction as a Rainbird-style streaming counter
// subsystem: a tap on the Scribe aggregators fans accepted client events
// into sharded, lock-striped, one-minute-windowed hierarchical counters
// (knobs: Config.Shards, Stripes, Retention, QueueDepth, MaxBatch), which
// answer point lookups, prefix top-K, and time-range sums seconds after
// events occur. birdbrain.Lambda splits serving between the two paths —
// "today so far" from the realtime counters, sealed days from the
// warehouse rollups — and realtime.Reconcile replays a sealed day through
// the counters to prove both paths compute identical §3.2 rollup tables.
//
// The counter hot path is interned: a concurrent, read-mostly symbol
// table digests each distinct event name once — its six hierarchy
// prefixes, five §3.2 rollup names, and shard/stripe routing cached
// behind dense integer IDs — so steady-state ingestion is an
// allocation-free read-locked lookup plus integer-keyed increments, and
// query results resolve IDs back to strings only at the edges.
//
// The counters are durable: realtime.Open roots a counter in a directory
// where every drained batch is appended to a per-shard, CRC-framed
// write-ahead log (recordio.CRCWriter framing; Config.FsyncEvery trades
// fsync cadence against throughput) before it is applied, and a periodic
// snapshotter (Config.SnapshotEvery) serializes the stripe rings and
// truncates the covered log segments. WAL records are
// dictionary-compressed (format v2): each segment embeds a first-seen
// name once and logs a few varint bytes per observation after that,
// cutting the log from ~36 B to a few bytes per event; v1 full-name
// records from older logs still replay. Snapshots carry a dictionary of
// their own plus the full Stats block, so activity counters survive
// restarts. After a crash, Open rebuilds the symbol table and replays the
// newest valid snapshot plus the WAL tail — tolerating a torn final
// record, flipped bits, damaged or missing snapshots, and shard/stripe
// reconfiguration (replay re-digests every name) — so a restarted shard
// remembers "today so far" instead of waiting a day for the warehouse
// rollup, and still reconciles exactly against the batch path.
//
// internal/cluster scales that single counter out: N in-process
// realtime.Counter nodes behind a consistent-hash router (a two-level
// Dynamo-style map — event name to one of P fixed partitions, partition
// to R distinct nodes on a virtual-point ring, computed once at startup
// so crashes divert writes to hints rather than re-route the ring).
// Every event lands on all R replicas through per-node send queues that
// retry with capped exponential backoff; a heartbeat/suspicion failure
// detector (alive -> suspect -> dead on a zk.Clock, so scenarios run it
// deterministically) stops the retry tax for dead nodes, whose writes
// divert to hinted handoff and replay in order once the node returns —
// each node's own WAL/snapshot recovery remains the intra-node story,
// and the two together make a mid-day crash + restart converge back to
// exact counts. On the read side birdbrain.Scatter fans PathSum / TopK /
// Series / RollupSnapshot across one live replica per partition, merges
// the disjoint partials, and degrades instead of failing: a query served
// around a dead replica is marked Degraded (Failovers counts the fallen
// primaries), and only a partition with no live replica at all makes the
// answer Partial. Scatter.ReplicaTimeout arms a hedge against
// slow-but-alive replicas: a partition query that has not answered
// within the timeout races the next replica in parallel and takes the
// first answer, so a wedged node costs one timeout instead of a whole
// query. The node-crash scenario cell asserts the whole story
// in CI: crash one node of a 3-node R=2 cluster mid-day, queries keep
// answering (degraded) during the outage, and after restart + handoff
// replay the scatter-gathered day reconciles exactly against the batch
// rollups.
//
// Every subsystem reports into internal/telemetry, a dependency-free
// metrics registry: atomic counters and gauges, log-linear histograms
// (Observe is allocation-free; quantiles are accurate to one bucket
// width, ~6%), gauge funcs for wiring existing Stats fields through
// without duplication, and spans that time pipeline stages into
// histograms (realtime.recovery -> .snapshot/.wal children). Metric
// names follow subsystem.metric.unit — realtime.ingest.events,
// dataflow.spill.bytes, realtime.wal.fsync.ns — and instrumentation
// sits only at batch/flush/split/pass granularity, so the hot paths
// stay allocation-free with telemetry on (asserted by benchmarks). To
// add an instrument: declare a package-level handle via
// telemetry.GetCounter/GetGauge/GetHistogram (or RegisterGaugeFunc for
// computed values) and update it at a coarse boundary. Everything is
// exposed three ways: telemetry.Snapshot() returns the registry as a
// JSON-ready value, telemetry.Handler() serves it at /debug/unilog
// (expvar-style text, or JSON with ?format=json — cmd/unilog-demo
// -http serves it live and CI smoke-tests it), and StartSummaryLogger
// emits a periodic one-line delta of series that changed. benchrunner
// embeds the full snapshot plus p50/p95/p99 latency series in every
// BENCH_*.json, and cmd/benchcompare gates those direction-aware
// (throughput lower = regressed, latency higher = regressed).
//
// The traffic shapes the paper's infrastructure existed to survive are
// data, not code: internal/scenario turns a declarative JSON workload
// spec — named client classes with rate fractions and poisson / gamma /
// uniform arrival processes, time-windowed flash-crowd multipliers on a
// namespace subtree, per-region outage windows whose daemon spools
// replay as backfill, per-session clock skew, a deliberately slow
// realtime consumer, one seed — into a composable event-stream source
// over the workload generator (Stream transforms stack like middleware),
// executes it through the full multi-region pipeline with the faults
// injected, and evaluates the spec's declared invariants:
// reconcile-exact after backfill, exactly-once delivery, required spill
// or backpressure telemetry, event-volume floors. benchrunner -grid runs
// a (scenario x config) experiment matrix from an experiments.json,
// emitting one machine-readable JSON per cell (telemetry snapshot plus
// latency percentiles, same shape as the BENCH files); benchcompare
// diffs whole grid directories cell by cell; and CI's scenario-matrix
// job runs the committed grid under ci/scenarios/ on every push.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/ directory
// for runnable entry points.
package unilog

// Package unilog is a from-scratch Go reproduction of "The Unified Logging
// Infrastructure for Data Analytics at Twitter" (Lee, Lin, Liu, Lorek,
// Ryaboy; PVLDB 5(12), 2012).
//
// The repository rebuilds every system the paper describes or depends on —
// Scribe daemons and aggregators, ZooKeeper coordination, staging and
// warehouse HDFS clusters, the hourly log mover, Thrift serialization, the
// unified client-events format, materialized session sequences, the client
// event catalog, a Pig-like dataflow engine with MapReduce cost accounting,
// the Oink workflow manager, Elephant Twin indexing, and the §5 analytics
// applications (counting, funnels, CTR/FTR, n-gram user models,
// collocations) — over a deterministic synthetic workload with planted
// ground truth.
//
// See DESIGN.md for the system inventory and per-experiment index,
// EXPERIMENTS.md for paper-vs-measured results, and the examples/ directory
// for runnable entry points.
package unilog
